"""Reusable executor conformance + fault-injection harness.

The executor stack's core contract is *bit-identical stored rows*: any
executor, any worker count, any lease size, and any fault along the way
must leave the store exactly as a fault-free serial run would.  This
module packages that contract as a matrix any executor implementation
can be driven through:

========================  ==================================================
fault cell                what is injected
========================  ==================================================
``none``                  nothing — the plain equivalence run
``worker-crash``          the computing side dies mid-campaign: a socket
                          worker vanishes mid-lease (``--max-units``, so the
                          partial-lease remainder requeues to the survivor),
                          serial/process abort after two units and a fresh
                          executor finishes via ``resume=True``
``master-kill-resume``    the whole campaign process takes ``SIGKILL``
                          mid-run; a new process resumes the store
``duplicate-delivery``    every result is delivered to the store twice
                          (requeue-race replay); idempotent appends must
                          swallow each copy exactly once
``speculative-duplicate`` a worker wedges mid-unit (heartbeating, never
                          finishing) and speculation rescues its lease with
                          duplicate attempts; serial/process replay every
                          append as a losing ``"speculative"`` attempt and
                          the per-attempt dedup counts must be exact
``lease-revocation``      an idle worker steals the unstarted remainder of
                          a straggler's lease (v3 ``revoke``);
                          serial/process abort mid-campaign, a fresh
                          executor finishes the re-leased remainder, and a
                          revoked unit's late ``"stale"`` ack is swallowed
``wedged-worker``         a worker stalls mid-unit without dying — alive to
                          the dead-man deadline, dead to the campaign —
                          and stealing + speculation together must rescue
                          every unit it holds
``revoke-ack-race``       the victim ignores the revoke and keeps acking
                          revoked units, racing the thief; first ack wins
                          in both orders and losers are counted per attempt
========================  ==================================================

``run_cell`` executes one (executor, fault, backend) cell against a
store directory and returns the store's canonical per-rep rows for
comparison against the serial baseline.  The same matrix runs against
both result-store backends — the JSONL rows file and the columnar
chunk store (with ``chunk_rows`` shrunk so every cell exercises chunk
sealing mid-campaign) — pinning the two to identical semantics under
every fault.  ``test_conformance.py`` drives the full matrix under the
``conformance`` pytest marker; the module itself is importable (no
``test_`` prefix) so future executors can reuse it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.experiments import (
    ColumnarStore,
    ExperimentConfig,
    ProcessExecutor,
    RunStore,
    ScenarioGrid,
    SerialExecutor,
    SocketExecutor,
    open_store,
    run_campaign,
)
from repro.experiments.executors import (
    WORKER_EXIT_FAULT_INJECTED,
    WORKER_EXIT_OK,
    SpeculationPolicy,
    sockets_available,
)
from repro.experiments.grid import WorkUnit
from repro.experiments.harness import RepResult

EXECUTORS: tuple[str, ...] = ("serial", "process", "socket")
BACKENDS: tuple[str, ...] = ("jsonl", "columnar")
#: tiny sealing threshold so every columnar cell rotates chunks mid-run
#: (each pinned-config unit flattens to several rows)
CONFORMANCE_CHUNK_ROWS = 3
FAULTS: tuple[str, ...] = (
    "none",
    "worker-crash",
    "master-kill-resume",
    "duplicate-delivery",
    "speculative-duplicate",
    "lease-revocation",
    "wedged-worker",
    "revoke-ack-race",
)

#: hard no-activity deadline for every socket cell — a wedged master
#: fails loudly instead of hanging the suite
DEADLINE_S = 60.0


class FaultInjected(RuntimeError):
    """Raised by the harness to kill the computing side mid-campaign."""


class DuplicatingAppends:
    """A store whose every append is delivered twice.

    Models the requeue-race replay (a presumed-dead worker's result
    arriving after the rerun's) uniformly for all executors: the second
    delivery must be swallowed by idempotency, never duplicate a row.
    Composed over either backend class by :func:`_new_store`.
    """

    def append(
        self, unit: WorkUnit, result: RepResult, attempt: str = "primary"
    ) -> bool:
        first = super().append(unit, result, attempt=attempt)
        replay = super().append(unit, result, attempt=attempt)
        assert not replay, f"duplicate append of {unit.unit_id} was stored"
        return first


class AttemptReplayAppends:
    """A store where every unit's result also arrives from a losing
    speculative attempt — the serial/process model of first-ack-wins:
    the replay must never be stored, and must be attributed to its
    attempt tag exactly in ``dedup_stats()["by_attempt"]``."""

    def append(
        self, unit: WorkUnit, result: RepResult, attempt: str = "primary"
    ) -> bool:
        first = super().append(unit, result, attempt=attempt)
        replay = super().append(unit, result, attempt="speculative")
        assert not replay, f"speculative replay of {unit.unit_id} was stored"
        return first


class RacingAppends:
    """A store delivering each unit from both sides of the revoke-vs-ack
    race, alternating which attempt wins: the thief's ``"stolen"`` ack
    first for even units, the ignoring victim's ``"stale"`` ack first
    for odd ones.  Whichever order, first ack wins, the loser is counted
    under its tag, and the stored row is the same bits."""

    def append(
        self, unit: WorkUnit, result: RepResult, attempt: str = "primary"
    ) -> bool:
        winner, loser = ("stolen", "stale") if len(self) % 2 == 0 else (
            "stale", "stolen"
        )
        first = super().append(unit, result, attempt=winner)
        replay = super().append(unit, result, attempt=loser)
        assert not replay, f"losing {loser} ack of {unit.unit_id} was stored"
        return first


_BACKEND_BASES = {"jsonl": RunStore, "columnar": ColumnarStore}
_fault_store_cache: dict[tuple[str, str], type] = {}


def _new_store(
    backend: str, store_dir: Union[str, Path], mixin: Optional[type] = None
):
    """A fresh store of ``backend`` (columnar sized to seal mid-cell),
    optionally composed with a fault-injection append mixin."""
    base = _BACKEND_BASES[backend]
    cls = base
    if mixin is not None:
        key = (backend, mixin.__name__)
        cls = _fault_store_cache.get(key)
        if cls is None:
            cls = type(f"{mixin.__name__}_{base.__name__}", (mixin, base), {})
            _fault_store_cache[key] = cls
    if backend == "columnar":
        return cls(store_dir, chunk_rows=CONFORMANCE_CHUNK_ROWS)
    return cls(store_dir)


def make_cell_executor(
    name: str,
    lease: Union[str, int, None] = "auto",
    spawn: Union[int, Sequence[Sequence[str]]] = 2,
    speculate=None,
    steal=None,
):
    """A fresh executor for one conformance cell."""
    if name == "serial":
        return SerialExecutor()
    if name == "process":
        return ProcessExecutor(2, clamp=False, lease=lease)
    if name == "socket":
        return SocketExecutor(
            spawn_workers=spawn,
            timeout=DEADLINE_S,
            lease=lease,
            speculate=speculate,
            steal=steal,
        )
    raise ValueError(f"unknown conformance executor {name!r}")


def stored_rows(store_dir: Union[str, Path]) -> list[dict]:
    """The canonical per-rep rows of a store directory (any backend)."""
    with open_store(store_dir) as store:
        return store.rep_rows()


def run_cell(
    config: ExperimentConfig,
    executor_name: str,
    fault: str,
    store_dir: Union[str, Path],
    backend: str = "jsonl",
) -> list[dict]:
    """Run one (executor, fault, backend) cell; returns the stored rows.

    Every cell finishes the full campaign into ``store_dir`` — through
    the fault — and additionally asserts the fault-specific invariants
    (partial progress before resume, distinct fault exit codes, dedup
    counts).  The caller compares the returned rows against the serial
    baseline.
    """
    store_dir = Path(store_dir)
    grid = ScenarioGrid.from_config(config)
    total = grid.total_units

    if fault == "none":
        with _new_store(backend, store_dir) as store:
            run_campaign(config, executor=make_cell_executor(executor_name),
                         store=store)

    elif fault == "duplicate-delivery":
        store = _new_store(backend, store_dir, DuplicatingAppends)
        try:
            run_campaign(config, executor=make_cell_executor(executor_name),
                         store=store)
        finally:
            store.close()
        stats = store.dedup_stats()
        assert stats["duplicate_appends"] >= total, (
            f"expected >= {total} swallowed replays, saw {stats}"
        )

    elif fault == "worker-crash":
        if executor_name == "socket":
            # One worker vanishes after a single unit of its multi-unit
            # lease (--max-units 1, lease pinned > 1): the master must
            # requeue the lease's unfinished remainder to the survivor.
            executor = make_cell_executor(
                "socket", lease=2, spawn=[["--max-units", "1"], []]
            )
            with _new_store(backend, store_dir) as store:
                run_campaign(config, executor=executor, store=store)
            codes = executor.worker_exit_codes
            assert codes.count(WORKER_EXIT_FAULT_INJECTED) == 1, (
                f"fault worker's exit code not distinct: {codes}"
            )
            assert codes.count(WORKER_EXIT_OK) == 1, (
                f"surviving worker did not shut down cleanly: {codes}"
            )
        else:
            # Serial/process have no independently-killable worker with a
            # survivor, so the computing side aborts mid-campaign and a
            # fresh executor finishes from the partial store.
            _abort_then_resume(config, executor_name, store_dir, total,
                               backend, abort_after=2)

    elif fault == "master-kill-resume":
        _sigkill_master_then_resume(
            config, executor_name, store_dir, total, backend
        )

    elif fault == "speculative-duplicate":
        if executor_name == "socket":
            # One worker wedges on its very first unit (heartbeating the
            # whole time, so the dead-man deadline never fires) while
            # stealing is disabled: speculation alone must duplicate the
            # wedged lease's units onto the healthy worker.  A generous
            # budget lets it rescue the whole stranded lease.
            executor = make_cell_executor(
                "socket",
                lease=2,
                spawn=[["--wedge-after", "0"], []],
                speculate=SpeculationPolicy(
                    enabled=True, budget_fraction=1.0, min_seconds=0.3
                ),
                steal="off",
            )
            with _new_store(backend, store_dir) as store:
                run_campaign(config, executor=executor, store=store)
            assert executor.speculative_attempts >= 1, (
                "campaign finished without any speculative attempt"
            )
            codes = executor.worker_exit_codes
            assert codes.count(WORKER_EXIT_FAULT_INJECTED) == 1, (
                f"wedged worker's exit code not distinct: {codes}"
            )
        else:
            store = _new_store(backend, store_dir, AttemptReplayAppends)
            try:
                run_campaign(
                    config,
                    executor=make_cell_executor(executor_name),
                    store=store,
                )
            finally:
                store.close()
            stats = store.dedup_stats()
            assert stats["duplicate_appends"] == total, stats
            assert stats["by_attempt"] == {"speculative": total}, stats

    elif fault == "lease-revocation":
        if executor_name == "socket":
            # One 4-unit lease pins the whole campaign on the first
            # worker to connect; the other goes idle against an empty
            # queue and must steal the unstarted remainder via a v3
            # revoke.  Both workers are throttled so the lease is still
            # outstanding when the thief arrives.
            executor = make_cell_executor(
                "socket",
                lease=total,
                spawn=[["--slow-factor", "4"], ["--slow-factor", "4"]],
                steal="auto",
                speculate="off",
            )
            with _new_store(backend, store_dir) as store:
                run_campaign(config, executor=executor, store=store)
            assert executor.stolen_units >= 1, (
                "idle worker never stole from the outstanding lease"
            )
        else:
            # Serial/process analog: the computing side is revoked
            # mid-campaign (abort after two units), a fresh executor is
            # re-leased the remainder, and the revoked attempt's late
            # ack for an already-stored unit must be swallowed as a
            # counted "stale" duplicate.
            _abort_then_resume(config, executor_name, store_dir, total,
                               backend, abort_after=2)
            with open_store(store_dir) as store:
                unit = grid.units()[0]
                late = store.result(unit.unit_id)
                assert not store.append(unit, late, attempt="stale")
                assert store.dedup_stats()["by_attempt"] == {"stale": 1}

    elif fault == "wedged-worker":
        if executor_name == "socket":
            # The full rescue path: a worker takes the whole campaign as
            # one lease and wedges on the head unit.  Stealing reclaims
            # the unstarted tail, speculation duplicates the wedged head
            # — between them every unit the wedged worker holds must
            # complete, and the worker's injected-fault exit code stays
            # distinct.
            executor = make_cell_executor(
                "socket",
                lease=total,
                spawn=[["--wedge-after", "0"], []],
                speculate="auto",
                steal="auto",
            )
            with _new_store(backend, store_dir) as store:
                run_campaign(config, executor=executor, store=store)
            assert executor.speculative_attempts >= 1, (
                "wedged head unit was never speculated"
            )
            codes = executor.worker_exit_codes
            assert codes.count(WORKER_EXIT_FAULT_INJECTED) == 1, (
                f"wedged worker's exit code not distinct: {codes}"
            )
        else:
            # Serial/process analog: the run stalls mid-unit (the wedge)
            # and is abandoned after a single completed unit; a fresh
            # executor must finish the rest.
            _abort_then_resume(config, executor_name, store_dir, total,
                               backend, abort_after=1, stall_seconds=0.3)

    elif fault == "revoke-ack-race":
        if executor_name == "socket":
            # Both workers ignore revokes (fault injection), so every
            # stolen unit is computed twice and the victim's late acks
            # race the thief's: first ack wins, rows stay identical.
            executor = make_cell_executor(
                "socket",
                lease=total,
                spawn=[
                    ["--ignore-revoke", "--slow-factor", "4"],
                    ["--ignore-revoke", "--slow-factor", "4"],
                ],
                steal="auto",
                speculate="off",
            )
            store = _new_store(backend, store_dir)
            try:
                run_campaign(config, executor=executor, store=store)
            finally:
                store.close()
            assert executor.stolen_units >= 1, (
                "no lease was ever revoked, the race was not exercised"
            )
            # The exact duplicate count is timing-dependent (the master
            # may finish before the ignoring victim's last stale acks
            # arrive), but any loser must be attributed to the race.
            stats = store.dedup_stats()
            for tag in stats.get("by_attempt", {}):
                assert tag in ("stale", "stolen"), stats
        else:
            # Serial/process exercise both orders of the race directly
            # at the store layer: half the units are won by the thief's
            # "stolen" ack, half by the ignoring victim's "stale" ack.
            store = _new_store(backend, store_dir, RacingAppends)
            try:
                run_campaign(
                    config,
                    executor=make_cell_executor(executor_name),
                    store=store,
                )
            finally:
                store.close()
            stats = store.dedup_stats()
            assert stats["duplicate_appends"] == total, stats
            half, other = total // 2, total - total // 2
            assert stats["by_attempt"] == {"stale": half, "stolen": other}, (
                stats
            )

    else:
        raise ValueError(f"unknown conformance fault {fault!r}")

    rows = stored_rows(store_dir)
    with open_store(store_dir) as store:
        assert store.backend_name == backend, (
            f"cell store reopened as {store.backend_name!r}, not {backend!r}"
        )
        missing = {u.unit_id for u in grid.units()} - set(store.completed_ids())
    assert not missing, f"cell left {len(missing)} unit(s) incomplete"
    return rows


def _abort_then_resume(
    config: ExperimentConfig,
    executor_name: str,
    store_dir: Path,
    total: int,
    backend: str,
    abort_after: int,
    stall_seconds: float = 0.0,
) -> None:
    """Abort an in-process campaign after ``abort_after`` units, then
    finish it with a fresh executor via ``resume=True``.

    ``stall_seconds`` sleeps before the abort — the serial/process model
    of a wedged computation that an operator eventually abandons.
    """
    calls = 0

    def dying_progress(message: str) -> None:
        nonlocal calls
        calls += 1
        if calls >= abort_after:
            if stall_seconds:
                time.sleep(stall_seconds)
            raise FaultInjected(message)

    try:
        with _new_store(backend, store_dir) as store:
            run_campaign(
                config,
                executor=make_cell_executor(executor_name),
                store=store,
                progress=dying_progress,
            )
    except FaultInjected:
        pass
    with open_store(store_dir) as partial:
        done = len(partial)
    assert 0 < done < total, (
        f"abort landed outside the campaign: {done}/{total} done"
    )
    with _new_store(backend, store_dir) as store:
        run_campaign(config, executor=make_cell_executor(executor_name),
                     store=store, resume=True)


#: executor spec the SIGKILL victim subprocess resolves (socket masters
#: self-host two local workers; process pools skip the CPU clamp so the
#: fault lands mid-drain even on a 1-CPU container)
_VICTIM_SPECS = {"serial": "serial", "process": "process:2", "socket": "socket:2"}

_VICTIM_SCRIPT = """\
import json, sys, time
from repro.experiments import ColumnarStore, ExperimentConfig, RunStore, run_campaign
from repro.experiments.executors import make_executor

cfg = ExperimentConfig.from_dict(json.load(open(sys.argv[1])))
if sys.argv[4] == "columnar":
    store = ColumnarStore(sys.argv[2], chunk_rows=int(sys.argv[5]))
else:
    store = RunStore(sys.argv[2])
# Slow the append rate so the parent can land SIGKILL mid-campaign
# instead of racing a fast finish.
run_campaign(
    cfg,
    executor=make_executor(sys.argv[3], lease="auto"),
    store=store,
    progress=lambda message: time.sleep(0.4),
)
store.close()
"""


#: the persistent-service conformance cell's victim: a campaign service
#: whose spawned workers are throttled so the parent can land SIGKILL
#: while both submitted jobs are mid-flight
_SERVICE_VICTIM_SCRIPT = """\
import sys
from repro.experiments.service import CampaignService

service = CampaignService(
    sys.argv[1],
    spawn_workers=[["--slow-factor", sys.argv[2]] for _ in range(2)],
)
service.start()
service.serve_forever()
"""


def run_service_cell(
    config: ExperimentConfig, root: Union[str, Path], slow_factor: float = 6.0
) -> tuple[list[dict], list[dict]]:
    """The persistent-service conformance cell.

    A service subprocess (two throttled shared workers) accepts two
    concurrent jobs over the wire — one JSONL store, one columnar — and
    takes ``SIGKILL`` while at least one unit is done and at least one
    is not.  A fresh service started on the same root must resume both
    jobs to completion without rerunning any completed unit's row.
    Returns the two jobs' canonical per-rep rows ``(jsonl, columnar)``
    for comparison against the serial baseline.
    """
    from repro.experiments.service import (
        SERVICE_FILE_NAME,
        CampaignService,
        ServiceClient,
    )

    root = Path(root)
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVICE_VICTIM_SCRIPT, str(root),
         str(slow_factor)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    service_file = root / SERVICE_FILE_NAME
    deadline = time.monotonic() + DEADLINE_S
    try:
        while not service_file.exists():
            assert proc.poll() is None, "service victim died before binding"
            assert time.monotonic() < deadline, "service never bound"
            time.sleep(0.02)
        info = json.loads(service_file.read_text())
        client = ServiceClient((info["host"], info["port"]))
        jsonl_snap = client.submit({"config": config.to_dict()},
                                   tenant="alice")
        columnar_snap = client.submit(
            {"config": config.to_dict(), "store": {"backend": "columnar"}},
            tenant="bob",
            priority=1,
        )
        done = 0
        while time.monotonic() < deadline:
            done = sum(
                client.status(snap["job_id"])["done"]
                for snap in (jsonl_snap, columnar_snap)
            )
            if done >= 1:
                break
            time.sleep(0.05)
        assert done >= 1, "no unit completed before the kill"
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    total = jsonl_snap["total"] + columnar_snap["total"]
    done_on_disk = 0
    for snap in (jsonl_snap, columnar_snap):
        with open_store(snap["store"]) as partial:
            done_on_disk += len(partial)
    assert done_on_disk < total, "kill landed after both jobs finished"

    service = CampaignService(root, spawn_workers=2)
    service.start()
    try:
        client = ServiceClient(service.address)
        for snap in (jsonl_snap, columnar_snap):
            final = client.wait(snap["job_id"], timeout=DEADLINE_S)
            assert final["state"] == "done", final
    finally:
        service.stop()
    with open_store(jsonl_snap["store"]) as store:
        assert store.backend_name == "jsonl"
        jsonl_rows = store.rep_rows()
    with open_store(columnar_snap["store"]) as store:
        assert store.backend_name == "columnar"
        columnar_rows = store.rep_rows()
    return jsonl_rows, columnar_rows


def _sigkill_master_then_resume(
    config: ExperimentConfig,
    executor_name: str,
    store_dir: Path,
    total: int,
    backend: str,
) -> None:
    """SIGKILL a campaign subprocess mid-run, then resume it here.

    The kill lands after at least one row hit the disk (polled) and the
    resume must not rerun any completed unit.  Append-only discipline is
    asserted per backend: the JSONL rows file must survive as a byte
    prefix, while columnar sealed chunks must survive byte-identical
    (the tail legitimately truncates when the resume seals it).
    """
    cfg_path = store_dir.parent / "victim-config.json"
    cfg_path.parent.mkdir(parents=True, exist_ok=True)
    cfg_path.write_text(json.dumps(config.to_dict()))
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _VICTIM_SCRIPT,
            str(cfg_path),
            str(store_dir),
            _VICTIM_SPECS[executor_name],
            backend,
            str(CONFORMANCE_CHUNK_ROWS),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    rows_name = "tail.jsonl" if backend == "columnar" else "rows.jsonl"
    rows_path = store_dir / rows_name

    def row_on_disk() -> bool:
        if rows_path.exists() and rows_path.read_bytes().count(b"\n") >= 1:
            return True
        return backend == "columnar" and any(store_dir.glob("chunk-*.npz"))

    deadline = time.monotonic() + DEADLINE_S
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if row_on_disk():
                break
            time.sleep(0.02)
        assert row_on_disk(), "victim campaign never wrote a row"
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    with open_store(store_dir) as partial:
        done_before = len(partial)
    assert done_before < total, "kill landed too late to exercise resume"
    bytes_before = rows_path.read_bytes() if rows_path.exists() else b""
    chunks_before = {
        p.name: p.read_bytes() for p in store_dir.glob("chunk-*.npz")
    }

    with _new_store(backend, store_dir) as store:
        run_campaign(config, executor=make_cell_executor(executor_name),
                     store=store, resume=True)

    if backend == "columnar":
        # Sealed chunks are immutable and only ever accrue.
        chunks_after = {
            p.name: p.read_bytes() for p in store_dir.glob("chunk-*.npz")
        }
        for name, blob in chunks_before.items():
            assert chunks_after.get(name) == blob, (
                f"resume rewrote sealed chunk {name}"
            )
        assert len(chunks_after) >= len(chunks_before)
    else:
        bytes_after = rows_path.read_bytes()
        # Append-only discipline: completed rows survive the kill
        # untouched (modulo the documented partial-final-line repair,
        # which only ever removes bytes of the interrupted, *incomplete*
        # record).
        repaired_prefix = bytes_before
        if not bytes_before.endswith(b"\n"):
            repaired_prefix = bytes_before[: bytes_before.rfind(b"\n") + 1]
        assert bytes_after.startswith(repaired_prefix), (
            "resume rewrote completed rows"
        )
