"""Property-based round-trip tests for the campaign wire format.

The ``WorkUnit``/``ScenarioGrid`` JSON wire format is what travels over
the socket protocol (unit dispatch) and into the store manifest
(``--resume``), so it must round-trip *exactly* — any config a user can
build, any float granularity, unicode scenario labels, and extreme
seeds.  Hypothesis generates the configs; equality is dataclass-deep, so
a single drifted field fails loudly.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import ScenarioGrid, WorkUnit
from repro.experiments.store import RunStore

#: every valid (model, topology, policy) combination the config accepts
_SCENARIOS = st.one_of(
    st.tuples(
        st.just("oneport"),
        st.none(),
        st.sampled_from(["append", "insertion"]),
    ),
    st.tuples(
        st.just("routed-oneport"),
        st.sampled_from(["clique", "line", "mesh", "ring", "star", "torus"]),
        st.just("append"),
    ),
    st.tuples(
        st.sampled_from(["uniport", "oneport-nooverlap", "macro-dataflow"]),
        st.none(),
        st.just("append"),
    ),
)

#: scenario labels: any JSON-encodable unicode, including separators
_NAMES = st.text(min_size=1, max_size=24)

#: seed extremes: zero, 64-bit, and beyond (Python ints are unbounded
#: and JSON round-trips them exactly)
_SEEDS = st.one_of(
    st.just(0),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.just(2**63 - 1),
    st.just(2**96 + 7),
)

_FLOATS = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def _range(lo_st, hi_st):
    return st.tuples(lo_st, hi_st).map(lambda t: (min(t), max(t)))


@st.composite
def configs(draw) -> ExperimentConfig:
    model, topology, policy = draw(_SCENARIOS)
    granularities = tuple(
        draw(
            st.lists(_FLOATS, min_size=1, max_size=6, unique=True)
        )
    )
    task_lo = draw(st.integers(2, 100))
    return ExperimentConfig(
        name=draw(_NAMES),
        granularities=granularities,
        num_procs=draw(st.integers(2, 40)),
        epsilon=draw(st.integers(0, 5)),
        crashes=draw(st.integers(0, 4)),
        num_graphs=draw(st.integers(1, 5)),
        task_range=(task_lo, task_lo + draw(st.integers(0, 60))),
        degree_range=(1, draw(st.integers(1, 5))),
        volume_range=draw(_range(_FLOATS, _FLOATS)),
        delay_range=draw(_range(_FLOATS, _FLOATS)),
        base_cost_range=draw(_range(_FLOATS, _FLOATS)),
        heterogeneity=draw(st.floats(0.0, 1.0)),
        base_seed=draw(_SEEDS),
        algorithms=tuple(
            draw(
                st.lists(
                    st.sampled_from(
                        ["caft", "caft-paper", "ftsa", "ftbar", "heft"]
                    ),
                    min_size=1,
                    max_size=4,
                    unique=True,
                )
            )
        ),
        model=model,
        topology=topology,
        port_policy=policy,
        fast=draw(st.booleans()),
        description=draw(st.text(max_size=20)),
    )


def _json_round_trip(data: dict) -> dict:
    """Through the actual wire: compact separators, then parse."""
    return json.loads(json.dumps(data, separators=(",", ":")))


class TestConfigRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(configs())
    def test_config_survives_json(self, cfg):
        assert ExperimentConfig.from_dict(_json_round_trip(cfg.to_dict())) == cfg

    @settings(max_examples=60, deadline=None)
    @given(configs())
    def test_unknown_keys_ignored(self, cfg):
        data = _json_round_trip(cfg.to_dict())
        data["added_in_a_future_version"] = {"nested": [1, 2]}
        assert ExperimentConfig.from_dict(data) == cfg


class TestWorkUnitRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(configs(), st.data())
    def test_unit_survives_json(self, cfg, data):
        g = data.draw(st.sampled_from(cfg.granularities))
        rep = data.draw(st.integers(0, cfg.num_graphs - 1))
        unit = WorkUnit(cfg, g, rep)
        rebuilt = WorkUnit.from_dict(_json_round_trip(unit.to_dict()))
        assert rebuilt == unit
        # Identity is what store rows and resume key on: it must be
        # byte-stable across the wire, not merely equal.
        assert rebuilt.unit_id == unit.unit_id
        assert rebuilt.locality_key == unit.locality_key
        assert rebuilt.scenario == unit.scenario

    def test_extreme_granularities_exact(self):
        cfg = ExperimentConfig(
            name="extremes",
            granularities=(5e-324, 1e308, 1 / 3, 0.1 + 0.2),
            num_procs=4,
            epsilon=1,
            crashes=1,
            num_graphs=1,
        )
        for g in cfg.granularities:
            unit = WorkUnit(cfg, g, 0)
            rebuilt = WorkUnit.from_dict(_json_round_trip(unit.to_dict()))
            # repr-exact: not approx — the unit id embeds repr(g).
            assert rebuilt.granularity == g
            assert math.copysign(1.0, rebuilt.granularity) == 1.0
            assert rebuilt.unit_id == unit.unit_id


class TestGridRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            configs(),
            min_size=1,
            max_size=3,
            unique_by=lambda c: c.scenario_key(),
        )
    )
    def test_grid_survives_json(self, cfgs):
        grid = ScenarioGrid(configs=tuple(cfgs))
        rebuilt = ScenarioGrid.from_dict(_json_round_trip(grid.to_dict()))
        assert rebuilt == grid
        units = grid.units()
        assert len(units) == grid.total_units
        # Unit ids are the store's primary key: they must never collide.
        assert len({u.unit_id for u in units}) == len(units)

    @settings(max_examples=20, deadline=None)
    @given(
        cfgs=st.lists(
            configs(),
            min_size=1,
            max_size=2,
            unique_by=lambda c: c.scenario_key(),
        )
    )
    def test_manifest_disk_round_trip(self, cfgs, tmp_path_factory):
        # Through the real manifest file (indent + text encoding), not
        # just json.dumps: unicode names land on disk and come back.
        grid = ScenarioGrid(configs=tuple(cfgs))
        directory = tmp_path_factory.mktemp("manifest-prop")
        store = RunStore(directory)
        store.write_manifest(grid)
        store.close()
        assert RunStore(directory).read_manifest_grid() == grid
