"""Shared fixtures for the experiments-layer tests.

The *pinned equivalence config* is the contract the executor stack is
held to: figure 1 shrunk to test scale, over the routed ring scenario
(so the socket wire format carries a topology config, not just the
defaults).  Serial, process, and socket executors — and any
interrupt/resume split — must produce bit-identical rows for it.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import FIGURES, ExperimentConfig


def equivalence_config() -> ExperimentConfig:
    """Figure 1 small + routed ring: the pinned executor-equivalence case."""
    return replace(
        FIGURES[1].with_graphs(2).with_network(topology="ring"),
        granularities=(0.4, 1.2),
        num_procs=6,
        task_range=(12, 18),
    )


@pytest.fixture(scope="session")
def pinned_config() -> ExperimentConfig:
    return equivalence_config()


@pytest.fixture(scope="session")
def pinned_serial_rows(pinned_config):
    """The serial-executor baseline every other executor must match."""
    from repro.experiments import run_campaign

    return run_campaign(pinned_config, executor="serial").rows()
