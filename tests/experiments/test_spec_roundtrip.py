"""Property-based round-trip tests for campaign spec files.

A :class:`CampaignSpec` is the unit of versioning and shipping — it must
survive serialize → load → serialize *identically* in both JSON and
TOML for any spec a user can build: unicode scenario names, extreme
seeds, every executor/store/axis combination.  Hypothesis generates the
specs; equality is dataclass-deep and the second serialization must be
byte-identical to the first (the canonical form is stable).

Unknown keys anywhere in a spec are rejected with a message naming them
— a typo in a campaign file must never be silently ignored.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.api import CampaignSpec, ExecutorSpec, StoreSpec
from repro.experiments.arrival import ArrivalSpec
from repro.experiments.config import ExperimentConfig
from repro.fault.model import FailureSpec
from repro.utils.errors import CampaignConfigError

#: every valid (model, topology, policy) combination the config accepts
_SCENARIOS = st.one_of(
    st.tuples(
        st.just("oneport"),
        st.none(),
        st.sampled_from(["append", "insertion"]),
    ),
    st.tuples(
        st.just("routed-oneport"),
        st.sampled_from(["clique", "line", "mesh", "ring", "star", "torus"]),
        st.just("append"),
    ),
    st.tuples(
        st.sampled_from(["uniport", "oneport-nooverlap", "macro-dataflow"]),
        st.none(),
        st.just("append"),
    ),
)

_NAMES = st.text(min_size=1, max_size=24)

_SEEDS = st.one_of(
    st.just(0),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.just(2**96 + 7),  # beyond 64-bit: JSON and tomllib are unbounded
)

_FLOATS = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def _range(values):
    return st.tuples(values, values).map(lambda t: (min(t), max(t)))


@st.composite
def configs(draw) -> ExperimentConfig:
    model, topology, policy = draw(_SCENARIOS)
    task_lo = draw(st.integers(2, 100))
    return ExperimentConfig(
        name=draw(_NAMES),
        granularities=tuple(
            draw(st.lists(_FLOATS, min_size=1, max_size=6, unique=True))
        ),
        num_procs=draw(st.integers(2, 40)),
        epsilon=draw(st.integers(0, 5)),
        crashes=draw(st.integers(0, 4)),
        num_graphs=draw(st.integers(1, 5)),
        task_range=(task_lo, task_lo + draw(st.integers(0, 60))),
        degree_range=(1, draw(st.integers(1, 5))),
        volume_range=draw(_range(_FLOATS)),
        delay_range=draw(_range(_FLOATS)),
        base_cost_range=draw(_range(_FLOATS)),
        heterogeneity=draw(st.floats(0.0, 1.0)),
        base_seed=draw(_SEEDS),
        algorithms=tuple(
            draw(
                st.lists(
                    st.sampled_from(["caft", "caft-paper", "ftsa", "ftbar"]),
                    min_size=1,
                    max_size=4,
                    unique=True,
                )
            )
        ),
        model=model,
        topology=topology,
        port_policy=policy,
        fast=draw(st.booleans()),
        description=draw(st.text(max_size=20)),
    )


@st.composite
def executor_specs(draw) -> ExecutorSpec:
    kind = draw(st.sampled_from(["serial", "process", "socket"]))
    if kind == "serial":
        # workers > 1 on the one-worker executor is (correctly) rejected
        return ExecutorSpec(kind=kind, workers=draw(st.none() | st.just(1)))
    workers = draw(st.none() | st.integers(1, 16))
    if kind != "socket":
        return ExecutorSpec(kind=kind, workers=workers)
    return ExecutorSpec(
        kind="socket",
        workers=workers,
        bind=draw(st.none() | st.just("127.0.0.1:7077")),
        spawn_workers=draw(st.none() | st.integers(1, 4)),
        timeout=draw(st.none() | st.floats(1.0, 1e6, allow_nan=False)),
        speculate=draw(st.none() | st.sampled_from(["off", "auto"])),
        steal=draw(st.none() | st.sampled_from(["off", "auto"])),
    )


@st.composite
def store_specs(draw) -> StoreSpec:
    directory = draw(
        st.none()
        | st.text(
            alphabet=st.characters(
                codec="utf-8", exclude_characters="\x00"
            ),
            min_size=1,
            max_size=30,
        )
    )
    if directory is None:
        return StoreSpec()
    backend = draw(st.sampled_from([None, "jsonl", "columnar"]))
    return StoreSpec(backend=backend, directory=directory)


@st.composite
def arrival_specs(draw) -> ArrivalSpec:
    kind = draw(st.sampled_from(["poisson", "uniform", "trace"]))
    kwargs = dict(
        kind=kind,
        granularity=draw(st.floats(0.01, 10.0, allow_nan=False)),
        # <= the smallest num_procs configs() can draw, so grid() stays
        # valid for every generated spec
        width=draw(st.integers(0, 2)),
        priority_levels=draw(st.integers(1, 4)),
    )
    if kind == "trace":
        times = sorted(
            draw(
                st.lists(
                    st.floats(
                        0.0, 1e6, allow_nan=False, allow_infinity=False
                    ),
                    min_size=1,
                    max_size=6,
                )
            )
        )
        kwargs["trace"] = tuple(times)
        n = draw(st.integers(0, len(times)))
        kwargs["priorities"] = tuple(
            draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
        )
    else:
        kwargs["jobs"] = draw(st.integers(1, 8))
    return ArrivalSpec(**kwargs)


@st.composite
def failure_specs(draw) -> FailureSpec:
    kind = draw(st.sampled_from(["iid", "domains", "topology"]))
    if kind == "domains":
        return FailureSpec(kind=kind, domain_size=draw(st.integers(1, 6)))
    return FailureSpec(
        kind=kind, domain_size=draw(st.none() | st.integers(1, 6))
    )


@st.composite
def specs(draw) -> CampaignSpec:
    figure = draw(st.none() | st.integers(1, 6))
    config = None if figure is not None else draw(configs())
    # scenario-axis expansion only over a plain one-port base: any other
    # base can collide with the axis scenarios (duplicate scenario keys),
    # which validation correctly rejects
    topologies: tuple = ()
    policies: tuple = ()
    include_base = True
    base_is_plain = figure is not None or (
        config.model == "oneport" and config.port_policy == "append"
    )
    if base_is_plain and draw(st.booleans()):
        topologies = tuple(
            draw(
                st.lists(
                    st.sampled_from(["ring", "star", "torus"]),
                    max_size=2,
                    unique=True,
                )
            )
        )
        policies = draw(st.sampled_from([(), ("insertion",)]))
        if topologies or policies:
            include_base = draw(st.booleans())
    return CampaignSpec(
        figure=figure,
        config=config,
        graphs=draw(st.none() | st.integers(1, 100)),
        seed=draw(st.none() | _SEEDS),
        fast=draw(st.none() | st.booleans()),
        topologies=topologies,
        policies=policies,
        include_base=include_base,
        executor=draw(executor_specs()),
        store=draw(store_specs()),
        lease=draw(st.sampled_from([None, "auto", 1, 8, 64])),
        arrival_process=draw(st.none() | arrival_specs()),
        failure_model=draw(st.none() | failure_specs()),
    )


class TestSpecRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(specs())
    def test_json_identity(self, spec):
        text = spec.to_json()
        loaded = CampaignSpec.from_json(text)
        assert loaded == spec
        # canonical form: the second serialization is byte-identical
        assert loaded.to_json() == text

    @settings(max_examples=80, deadline=None)
    @given(specs())
    def test_toml_identity(self, spec):
        text = spec.to_toml()
        loaded = CampaignSpec.from_toml(text)
        assert loaded == spec
        assert loaded.to_toml() == text

    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_formats_agree(self, spec):
        assert CampaignSpec.from_toml(spec.to_toml()) == CampaignSpec.from_json(
            spec.to_json()
        )

    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_grid_survives_the_round_trip(self, spec):
        """What ultimately matters: the reloaded spec expands to the same
        units (same ids, same seeds) as the original."""
        reloaded = CampaignSpec.from_json(spec.to_json())
        assert reloaded.grid() == spec.grid()

    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_file_round_trip(self, tmp_path_factory, spec):
        base = tmp_path_factory.mktemp("specs")
        for name in ("spec.json", "spec.toml"):
            path = spec.save(base / name)
            assert CampaignSpec.load(path) == spec


class TestSpecCoercion:
    def test_integer_granularities_load_as_floats(self):
        """A hand-written spec saying ``granularities = [1, 2]`` must
        mean the same campaign as ``[1.0, 2.0]`` — unit ids derive from
        ``repr(granularity)``, so the type matters."""
        toml_text = (
            'version = 1\nfigure = 4\n\n[config]\ngranularities = [1, 2]\n'
        )
        spec = CampaignSpec.from_toml(toml_text)
        assert spec.config.granularities == (1.0, 2.0)
        assert all(isinstance(g, float) for g in spec.config.granularities)
        unit = spec.grid().units()[0]
        assert "g=1.0" in unit.unit_id

    def test_partial_config_overrides_figure_base(self):
        spec = CampaignSpec.from_dict(
            {"figure": 2, "config": {"epsilon": 4, "task_range": [10, 20]}}
        )
        from repro.experiments.config import FIGURES

        assert spec.config.epsilon == 4
        assert spec.config.task_range == (10, 20)
        assert spec.config.granularities == FIGURES[2].granularities

    def test_complete_config_required_without_figure(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"config": {"epsilon": 4}},
        )
        assert "incomplete" in str(err.value)
        assert err.value.key == "config"


class TestUnknownKeyRejection:
    def test_top_level(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "granularity_sweep": "A"},
        )
        assert "granularity_sweep" in str(err.value)
        assert "known keys" in str(err.value)

    def test_executor_section(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "executor": {"kind": "process", "nworkers": 4}},
        )
        assert "nworkers" in str(err.value)
        assert err.value.key == "executor.nworkers"

    def test_store_section(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "store": {"dir": "x"}},
        )
        assert "dir" in str(err.value) and err.value.key == "store.dir"

    def test_config_section(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "config": {"epsilonn": 3}},
        )
        assert "epsilonn" in str(err.value)
        assert err.value.key == "config.epsilonn"

    def test_unsupported_version(self):
        with pytest.raises(CampaignConfigError, match="version"):
            CampaignSpec.from_dict({"figure": 1, "version": 99})

    def test_arrival_process_section(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "arrival_process": {"kind": "poisson", "rate": 2}},
        )
        assert "rate" in str(err.value)
        assert err.value.key == "arrival_process.rate"

    def test_failure_model_section(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "failure_model": {"kind": "iid", "sizes": 3}},
        )
        assert "sizes" in str(err.value)
        assert err.value.key == "failure_model.sizes"

    def test_arrival_inside_config_is_rejected(self):
        """The specs' canonical home for these tables is the top level
        (TOML cannot nest them under ``[config]``); a spec file putting
        them inside config gets an error pointing at the right key."""
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "config": {"arrival": {"kind": "poisson"}}},
        )
        assert "arrival_process" in str(err.value)
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "config": {"failure": {"kind": "iid"}}},
        )
        assert "failure_model" in str(err.value)


class TestOnlineSpecSections:
    """The online tables' spec-level semantics (beyond round-tripping)."""

    def test_unknown_kinds_are_rejected_with_registered_list(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "arrival_process": {"kind": "bursty"}},
        )
        assert "poisson" in str(err.value)
        assert err.value.key == "arrival_process.kind"
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 1, "failure_model": {"kind": "sunspots"}},
        )
        assert "iid" in str(err.value)
        assert err.value.key == "failure_model.kind"

    def test_tables_reach_the_base_config(self):
        spec = CampaignSpec.from_dict(
            {
                "figure": 1,
                "arrival_process": {"kind": "uniform", "jobs": 3},
                "failure_model": {"kind": "domains", "domain_size": 2},
            }
        )
        base = spec.base_config()
        assert base.arrival == ArrivalSpec(kind="uniform", jobs=3)
        assert base.failure == FailureSpec(kind="domains", domain_size=2)

    def test_config_level_specs_hoist_to_the_top_level(self):
        """A programmatically-built spec whose config already carries
        the online specs serializes them at the canonical top level —
        so TOML (one level of nesting) can always express it."""
        from dataclasses import replace

        from repro.experiments.config import FIGURES

        config = replace(
            FIGURES[1],
            arrival=ArrivalSpec(kind="poisson", jobs=4),
            failure=FailureSpec(kind="domains", domain_size=3),
        )
        spec = CampaignSpec(config=config)
        assert spec.arrival_process == ArrivalSpec(kind="poisson", jobs=4)
        assert spec.failure_model == FailureSpec(kind="domains", domain_size=3)
        assert spec.config.arrival is None and spec.config.failure is None
        data = spec.to_dict()
        assert data["arrival_process"] == {"kind": "poisson", "jobs": 4}
        assert "arrival" not in data["config"]
        assert CampaignSpec.from_toml(spec.to_toml()) == spec
