"""Tests for figure drivers, shape checks and reporting."""

import csv
import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import check_shape, run_figure
from repro.experiments.harness import run_campaign
from repro.experiments.report import (
    messages_table,
    panel_a,
    panel_b,
    panel_c,
    render_figure,
    write_csv,
)


@pytest.fixture(scope="module")
def mini_result():
    """A fast, fully-featured campaign used by all report tests."""
    cfg = ExperimentConfig(
        name="figure-mini",
        granularities=(0.4, 1.2),
        num_procs=8,
        epsilon=1,
        crashes=1,
        num_graphs=3,
        task_range=(25, 35),
    )
    return run_campaign(cfg)


class TestRunFigure:
    def test_bad_number(self):
        with pytest.raises(ValueError, match="figures 1-6"):
            run_figure(9)

    def test_figure_config_used(self):
        # run only the tiniest slice to keep tests fast
        result = run_figure(1, num_graphs=1)
        assert result.config.name == "figure1"
        assert len(result.points) == 10


class TestShapeChecks:
    def test_mini_shape(self, mini_result):
        report = check_shape(mini_result)
        assert report.ok, report.failed()

    def test_failed_lists_names(self, mini_result):
        report = check_shape(mini_result)
        report.checks["caft_beats_ftsa_latency"] = False
        assert "caft_beats_ftsa_latency" in report.failed()
        assert not report.ok


class TestPanels:
    def test_panel_a_contains_bounds(self, mini_result):
        text = panel_a(mini_result)
        assert "caft-UB" in text and "FF-caft" in text
        assert "0.40" in text

    def test_panel_b_crash_columns(self, mini_result):
        text = panel_b(mini_result)
        assert "caft-1c" in text and "ftsa-0c" in text

    def test_panel_c_overheads(self, mini_result):
        text = panel_c(mini_result)
        assert "%" in text

    def test_messages_table(self, mini_result):
        assert "message counts" in messages_table(mini_result)

    def test_render_figure_concatenates(self, mini_result):
        text = render_figure(mini_result)
        for piece in ("(a)", "(b)", "(c)", "message counts"):
            assert piece in text


class TestCsv:
    def test_write_csv_roundtrip(self, mini_result, tmp_path):
        path = write_csv(mini_result, tmp_path / "out" / "mini.csv")
        assert path.exists()
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert float(rows[0]["granularity"]) == 0.4
        assert float(rows[0]["caft_latency0"]) >= 1.0
        # no NaNs for the robust algorithms
        for key in ("caft_crash", "ftsa_crash", "ftbar_crash"):
            assert not math.isnan(float(rows[0][key]))
