"""Straggler-mitigation tests: speculation policy, work stealing, and
the revoke/stale-ack races, pinned with scripted wire-protocol workers.

The conformance matrix (``executor_conformance.py``) proves the
*outcome* — bit-identical rows under wedged workers, revoked leases,
and speculative duplicates.  This module pins the *mechanism*: policy
arithmetic, the exact revoke a victim receives, first-ack-wins in both
orders of the revoke-vs-stale-ack race, the v2-worker compatibility
guarantee (never revoked, still completes), connect backoff, and the
master's bounded respawn of crashed local workers.

Scripted-worker and spawned-worker tests are marked ``distributed``
like the rest of the socket suite.
"""

import socket
import threading
import time

import pytest

from repro.experiments import SocketExecutor, run_campaign
from repro.experiments.executors import SpeculationPolicy, parse_steal
from repro.experiments.executors.socket import (
    WORKER_EXIT_ERROR,
    _connect_with_backoff,
    _LineConn,
    sockets_available,
)
from repro.experiments.grid import ScenarioGrid, WorkUnit
from repro.experiments.store import RunStore, result_to_dict

#: hard deadline for every socket campaign in this module
DEADLINE_S = 60.0


class TestSpeculationPolicy:
    def test_from_spec_resolution(self):
        assert SpeculationPolicy.from_spec(None).enabled is False
        assert SpeculationPolicy.from_spec("off").enabled is False
        assert SpeculationPolicy.from_spec(False).enabled is False
        assert SpeculationPolicy.from_spec("auto").enabled is True
        assert SpeculationPolicy.from_spec(True).enabled is True
        configured = SpeculationPolicy(enabled=True, slow_factor=5.0)
        assert SpeculationPolicy.from_spec(configured) is configured
        with pytest.raises(ValueError, match="bad speculate spec"):
            SpeculationPolicy.from_spec("sometimes")

    def test_budget_caps_launches(self):
        assert SpeculationPolicy(enabled=False).budget(100) == 0
        policy = SpeculationPolicy(enabled=True)  # default fraction 0.25
        assert policy.budget(100) == 25
        assert policy.budget(4) == 1
        # Never zero for a non-empty campaign: one rescue is always
        # allowed, or tiny campaigns could not speculate at all.
        assert policy.budget(1) == 1
        assert SpeculationPolicy(
            enabled=True, budget_fraction=1.0
        ).budget(4) == 4

    def test_is_straggler_needs_calibrated_ewma(self):
        policy = SpeculationPolicy(enabled=True)
        assert policy.is_straggler(1e9, None) is False  # no sample yet
        assert SpeculationPolicy(enabled=False).is_straggler(1e9, 1.0) is False

    def test_is_straggler_thresholds(self):
        policy = SpeculationPolicy(
            enabled=True, slow_factor=3.0, min_seconds=0.5
        )
        # Fast units: the min_seconds floor dominates, so scheduling
        # noise on sub-millisecond campaigns never looks slow.
        assert policy.is_straggler(0.4, 0.01) is False
        assert policy.is_straggler(0.6, 0.01) is True
        # Slow units: slow_factor x EWMA dominates.
        assert policy.is_straggler(2.9, 1.0) is False
        assert policy.is_straggler(3.1, 1.0) is True


class TestParseSteal:
    def test_resolution(self):
        assert parse_steal(None) is True  # on by default
        assert parse_steal("auto") is True
        assert parse_steal(True) is True
        assert parse_steal("off") is False
        assert parse_steal(False) is False
        with pytest.raises(ValueError, match="bad steal spec"):
            parse_steal("maybe")


@pytest.mark.distributed
@pytest.mark.skipif(
    not sockets_available(), reason="localhost sockets unavailable"
)
class TestConnectBackoff:
    def test_retries_until_master_binds(self, capfd):
        # Reserve a port, release it, and bind it back only after the
        # worker's first connect attempts have failed: the jittered
        # backoff must carry the worker over the race with the
        # master's bind instead of dying on the first ECONNREFUSED.
        probe = socket.create_server(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()
        server_box = []

        def late_bind():
            time.sleep(0.4)
            server_box.append(socket.create_server((host, port)))

        binder = threading.Thread(target=late_bind)
        binder.start()
        try:
            conn = _connect_with_backoff(host, port)
            conn.close()
        finally:
            binder.join()
            for server in server_box:
                server.close()
        assert "unreachable" in capfd.readouterr().err

    def test_gives_up_after_bounded_retries(self, capfd):
        probe = socket.create_server(("127.0.0.1", 0))
        host, port = probe.getsockname()[:2]
        probe.close()
        with pytest.raises(OSError):
            _connect_with_backoff(host, port, retries=1)
        assert "retry 1/1" in capfd.readouterr().err


def _serial_rep_rows(config):
    """Per-rep serial baseline rows (what every scripted run must match)."""
    from repro.experiments.executors import SerialExecutor

    store = RunStore()
    SerialExecutor().run(ScenarioGrid.from_config(config).units(), store)
    return store.rep_rows()


def _wait_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.01)


@pytest.mark.distributed
@pytest.mark.skipif(
    not sockets_available(), reason="localhost sockets unavailable"
)
class TestScriptedStraggler:
    """Drive a real master with hand-rolled workers so every race is
    sequenced deterministically from the test body."""

    def _start_master(self, units, executor, store):
        errors = []

        def master():
            try:
                executor.run(units, store)
            except Exception as exc:  # surfaced by _finish below
                errors.append(exc)

        thread = threading.Thread(target=master)
        thread.start()
        _wait_until(
            lambda: executor.address is not None, message="master bind"
        )
        return thread, errors

    @staticmethod
    def _finish(thread, errors):
        thread.join(timeout=15.0)
        assert not thread.is_alive(), "master did not finish"
        assert not errors, errors

    @staticmethod
    def _hello(executor, proto):
        lc = _LineConn(socket.create_connection(executor.address, timeout=10.0))
        lc.send({
            "type": "hello", "worker": f"scripted-v{proto}",
            "heartbeat": 0.3, "proto": proto,
        })
        return lc

    @staticmethod
    def _ack(lc, unit, seconds=0.01):
        lc.send({
            "type": "result",
            "unit_id": unit.unit_id,
            "result": result_to_dict(unit.run()),
            "seconds": seconds,
        })

    @staticmethod
    def _lease_units(message):
        assert message["type"] == "lease", message["type"]
        return [WorkUnit.from_dict(d) for d in message["units"]]

    def _steal_setup(self, pinned_config, **executor_kwargs):
        """Master + victim holding a 4-unit lease + thief that stole its
        unstarted tail.  Returns everything the race tests sequence."""
        units = ScenarioGrid.from_config(pinned_config).units()
        executor = SocketExecutor(
            spawn_workers=0, timeout=DEADLINE_S, lease=len(units),
            **executor_kwargs,
        )
        store = RunStore()
        thread, errors = self._start_master(units, executor, store)
        victim = self._hello(executor, proto=3)
        leased = self._lease_units(victim.recv(timeout=10.0))
        assert len(leased) == len(units)  # one lease spans the campaign
        thief = self._hello(executor, proto=3)
        stolen = self._lease_units(thief.recv(timeout=10.0))
        # The head of the victim's lease is what it is computing right
        # now; only the unstarted tail moves.
        assert [u.unit_id for u in stolen] == [
            u.unit_id for u in leased[1:]
        ]
        revoke = victim.recv(timeout=10.0)
        assert revoke == {
            "type": "revoke",
            "unit_ids": [u.unit_id for u in leased[1:]],
        }
        return executor, store, thread, errors, victim, thief, leased, stolen

    def test_idle_worker_steals_unstarted_tail(self, pinned_config):
        (executor, store, thread, errors, victim, thief, leased, stolen) = (
            self._steal_setup(pinned_config)
        )
        try:
            for unit in stolen:
                self._ack(thief, unit)
            self._ack(victim, leased[0])
            assert victim.recv(timeout=10.0)["type"] == "shutdown"
            assert thief.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            victim.close()
            thief.close()
            self._finish(thread, errors)
        assert executor.stolen_units == len(leased) - 1
        assert executor.speculative_attempts == 0
        # An obedient victim produces no duplicate deliveries at all.
        assert store.dedup_stats() == {
            "duplicate_appends": 0, "replayed_rows": 0,
        }
        assert store.rep_rows() == _serial_rep_rows(pinned_config)

    def test_stale_ack_after_thief_loses(self, pinned_config):
        # Race order A: the thief's result lands first; the victim
        # (ignoring its revoke) acks the same unit afterwards.  The late
        # copy must lose first-ack-wins and be attributed as "stale".
        (executor, store, thread, errors, victim, thief, leased, stolen) = (
            self._steal_setup(pinned_config)
        )
        try:
            for unit in stolen:
                self._ack(thief, unit)
            _wait_until(
                lambda: len(store) == len(stolen),
                message="thief results stored",
            )
            self._ack(victim, stolen[0])  # revoked: a stale delivery
            _wait_until(
                lambda: store.dedup_stats().get("by_attempt")
                == {"stale": 1},
                message="stale ack counted",
            )
            self._ack(victim, leased[0])
            assert victim.recv(timeout=10.0)["type"] == "shutdown"
            assert thief.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            victim.close()
            thief.close()
            self._finish(thread, errors)
        assert store.dedup_stats() == {
            "duplicate_appends": 1,
            "replayed_rows": 0,
            "by_attempt": {"stale": 1},
        }
        assert store.rep_rows() == _serial_rep_rows(pinned_config)

    def test_stale_ack_before_thief_wins(self, pinned_config):
        # Race order B: the victim finished a revoked unit before it
        # read the revoke, and its ack beats the thief's.  First ack
        # wins regardless of who holds the lease now — the stale copy
        # is stored, the thief's later delivery is the duplicate.
        (executor, store, thread, errors, victim, thief, leased, stolen) = (
            self._steal_setup(pinned_config)
        )
        try:
            self._ack(victim, stolen[0])  # revoked, but first to land
            _wait_until(lambda: len(store) == 1, message="stale ack stored")
            for unit in stolen:
                self._ack(thief, unit)
            self._ack(victim, leased[0])
            assert victim.recv(timeout=10.0)["type"] == "shutdown"
            assert thief.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            victim.close()
            thief.close()
            self._finish(thread, errors)
        assert store.dedup_stats() == {
            "duplicate_appends": 1,
            "replayed_rows": 0,
            "by_attempt": {"stolen": 1},
        }
        assert store.rep_rows() == _serial_rep_rows(pinned_config)

    def test_v2_worker_is_never_revoked(self, pinned_config):
        # The compatibility pin: a v2 worker completes a campaign
        # against a v3 master with stealing enabled, and is never sent a
        # revoke (or any other v3 message) — the master simply declines
        # to steal from it, even while an idle v3 worker is begging.
        units = ScenarioGrid.from_config(pinned_config).units()
        executor = SocketExecutor(
            spawn_workers=0, timeout=DEADLINE_S, lease=len(units),
        )
        store = RunStore()
        thread, errors = self._start_master(units, executor, store)
        victim = self._hello(executor, proto=2)
        thief = None
        try:
            leased = self._lease_units(victim.recv(timeout=10.0))
            assert len(leased) == len(units)
            thief = self._hello(executor, proto=3)
            # Let the idle thief's claim loop run: it must keep finding
            # nothing rather than steal from a lease that cannot be
            # revoked.
            time.sleep(0.5)
            for unit in leased:
                self._ack(victim, unit)
            # The ONLY message after the lease is the shutdown — a
            # revoke here would have crashed this worker in production.
            assert victim.recv(timeout=10.0)["type"] == "shutdown"
            assert thief.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            victim.close()
            if thief is not None:
                thief.close()
            self._finish(thread, errors)
        assert executor.stolen_units == 0
        assert store.rep_rows() == _serial_rep_rows(pinned_config)

    def test_speculation_rescues_wedged_lease(self, pinned_config):
        # A wedged victim: acks one unit (calibrating the EWMA), then
        # holds the rest of its lease forever.  With stealing off, only
        # speculation can finish the campaign — one duplicate per idle
        # claim, in lease order.
        units = ScenarioGrid.from_config(pinned_config).units()
        executor = SocketExecutor(
            spawn_workers=0, timeout=DEADLINE_S, lease=len(units),
            steal="off",
            speculate=SpeculationPolicy(
                enabled=True, min_seconds=0.2, budget_fraction=1.0
            ),
        )
        store = RunStore()
        thread, errors = self._start_master(units, executor, store)
        victim = self._hello(executor, proto=3)
        rescuer = None
        try:
            leased = self._lease_units(victim.recv(timeout=10.0))
            self._ack(victim, leased[0])  # then wedge, heartbeats only
            rescuer = self._hello(executor, proto=3)
            for expected in leased[1:]:
                duplicate = self._lease_units(rescuer.recv(timeout=10.0))
                assert [u.unit_id for u in duplicate] == [expected.unit_id]
                self._ack(rescuer, duplicate[0])
            assert rescuer.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            victim.close()
            if rescuer is not None:
                rescuer.close()
            self._finish(thread, errors)
        assert executor.speculative_attempts == len(units) - 1
        assert executor.stolen_units == 0
        # The wedged worker never delivered its duplicates, so the
        # store saw each unit exactly once.
        assert store.dedup_stats() == {
            "duplicate_appends": 0, "replayed_rows": 0,
        }
        assert store.rep_rows() == _serial_rep_rows(pinned_config)


@pytest.mark.distributed
@pytest.mark.skipif(
    not sockets_available(), reason="localhost sockets unavailable"
)
class TestWorkerRespawn:
    def test_crashed_local_worker_is_respawned(
        self, pinned_config, pinned_serial_rows
    ):
        # The only spawned worker genuinely crashes (exit 1) every two
        # units: the campaign cannot complete without the master's
        # bounded respawn relaunching it.
        executor = SocketExecutor(
            spawn_workers=[["--die-after", "2"]], timeout=DEADLINE_S
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows
        assert executor.worker_respawns >= 1
        assert WORKER_EXIT_ERROR in executor.worker_exit_codes
