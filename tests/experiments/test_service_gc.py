"""TTL garbage collection of terminal service job directories.

``gc_job_dirs`` is the safety-critical half of ``service gc`` /
``--job-ttl``: it may only ever remove a job directory whose
``job.json`` records a *terminal* state (done / cancelled / failed) and
is older than the TTL.  Running jobs, directories without a readable
``job.json`` (a kill landed before the first persist — the recovery
path's "nothing leased" case), and young terminal jobs must all survive
every sweep.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.service import (
    JOB_FILE_NAME,
    CampaignService,
    gc_job_dirs,
)


def make_job_dir(
    root: Path, name: str, state=None, age: float = 1000.0
) -> Path:
    job_dir = root / "jobs" / name
    job_dir.mkdir(parents=True)
    (job_dir / "store").mkdir()
    if state is not None:
        job_file = job_dir / JOB_FILE_NAME
        job_file.write_text(json.dumps({"job_id": name, "state": state}))
        stamp = time.time() - age
        os.utime(job_file, (stamp, stamp))
    return job_dir


class TestGcJobDirs:
    def test_removes_only_old_terminal_jobs(self, tmp_path):
        make_job_dir(tmp_path, "job-1", "done")
        make_job_dir(tmp_path, "job-2", "running")
        make_job_dir(tmp_path, "job-3", "cancelled", age=1.0)
        make_job_dir(tmp_path, "job-4")  # no job.json: never touched
        make_job_dir(tmp_path, "job-5", "failed")
        removed = gc_job_dirs(tmp_path, ttl=100.0)
        assert removed == ["job-1", "job-5"]
        survivors = sorted(p.name for p in (tmp_path / "jobs").iterdir())
        assert survivors == ["job-2", "job-3", "job-4"]

    def test_zero_ttl_prunes_every_terminal_job(self, tmp_path):
        make_job_dir(tmp_path, "job-1", "done", age=0.5)
        make_job_dir(tmp_path, "job-2", "running", age=0.5)
        assert gc_job_dirs(tmp_path, ttl=0.0) == ["job-1"]

    def test_explicit_now_makes_the_sweep_deterministic(self, tmp_path):
        job_file = make_job_dir(tmp_path, "job-1", "done") / JOB_FILE_NAME
        mtime = job_file.stat().st_mtime
        assert gc_job_dirs(tmp_path, ttl=10.0, now=mtime + 5.0) == []
        assert gc_job_dirs(tmp_path, ttl=10.0, now=mtime + 15.0) == ["job-1"]

    def test_unreadable_job_file_is_kept(self, tmp_path):
        job_dir = make_job_dir(tmp_path, "job-1")
        (job_dir / JOB_FILE_NAME).write_text("{not json")
        assert gc_job_dirs(tmp_path, ttl=0.0) == []
        assert job_dir.exists()

    def test_missing_root_is_a_noop(self, tmp_path):
        assert gc_job_dirs(tmp_path / "nowhere", ttl=0.0) == []

    def test_negative_ttl_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            gc_job_dirs(tmp_path, ttl=-1.0)


class TestServiceTtl:
    def test_negative_job_ttl_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            CampaignService(tmp_path, job_ttl=-5.0)

    def test_gc_now_unregisters_removed_jobs(self, tmp_path):
        """A swept job disappears from the in-memory tables too (the
        periodic sweep path), without the service ever binding."""
        make_job_dir(tmp_path, "job-1", "done")
        make_job_dir(tmp_path, "job-2", "running")
        service = CampaignService(tmp_path, job_ttl=100.0)
        # simulate the recovered registrations gc_now must prune
        from repro.experiments.service import ServiceJob

        for name, state in (("job-1", "done"), ("job-2", "running")):
            job = ServiceJob(
                job_id=name, tenant="default", priority=0,
                seq=int(name.split("-")[1]), status=state,
            )
            service._jobs[name] = job
            service._order.append(job)
        assert service.gc_now() == ["job-1"]
        assert sorted(service._jobs) == ["job-2"]
        assert [j.job_id for j in service._order] == ["job-2"]

    def test_gc_now_without_ttl_is_a_noop(self, tmp_path):
        make_job_dir(tmp_path, "job-1", "done")
        service = CampaignService(tmp_path)
        assert service.gc_now() == []
        assert (tmp_path / "jobs" / "job-1").exists()
