"""The executor × fault × backend conformance matrix (marker:
``conformance``).

Drives ``executor_conformance.run_cell`` over every
Serial/Process/Socket × {none, worker crash mid-lease, master SIGKILL +
resume, duplicate delivery, speculation/steal races} ×
{jsonl, columnar} cell and asserts the stored rows are bit-identical to
a fault-free serial run — the contract that lets any scheduling *or
storage* change (batch leases, locality, adaptive sizing, chunked
columnar results) land without re-validating the science.  Columnar
cells run with a tiny ``chunk_rows`` so every fault interleaves with
chunk sealing.

Part of tier-1; socket cells auto-skip when localhost sockets are
unavailable (mirroring the ``distributed`` marker).  Run just this
matrix with ``pytest -m conformance``.
"""

import pytest

import executor_conformance as ec
from repro.experiments import RunStore, run_campaign

pytestmark = pytest.mark.conformance


@pytest.fixture(scope="session")
def baseline_rows(pinned_config, tmp_path_factory):
    """Per-rep rows of a fault-free serial run through a disk store —
    the bit-for-bit reference every cell must reproduce."""
    directory = tmp_path_factory.mktemp("conformance") / "baseline"
    run_campaign(pinned_config, executor="serial", store=directory)
    with RunStore(directory) as store:
        assert store.dedup_stats() == {
            "duplicate_appends": 0,
            "replayed_rows": 0,
        }
        return store.rep_rows()


@pytest.mark.parametrize("backend", ec.BACKENDS)
@pytest.mark.parametrize("fault", ec.FAULTS)
@pytest.mark.parametrize("executor_name", ec.EXECUTORS)
def test_conformance_cell(
    executor_name, fault, backend, pinned_config, baseline_rows, tmp_path
):
    if executor_name == "socket" and not ec.sockets_available():
        pytest.skip("localhost sockets unavailable")
    rows = ec.run_cell(
        pinned_config, executor_name, fault, tmp_path / "cell", backend=backend
    )
    assert rows == baseline_rows
