"""Master lifecycle regression tests: spawned workers never outlive a run.

The bugs pinned here: an exception anywhere in ``SocketExecutor.run``
(mid-spawn or mid-campaign) used to orphan already-spawned worker
subprocesses; the respawn budget was accounted per ``run()`` instead of
per job; and ``--bind host:0`` announced the requested port 0 instead of
the ephemeral port the OS actually bound.  :class:`WorkerPool` tests are
pure (fake processes, no sockets); the executor-level tests are marked
``distributed``.
"""

import subprocess

import pytest

from repro.experiments import SocketExecutor, run_campaign
from repro.experiments.executors import (
    WORKER_EXIT_FAULT_INJECTED,
    WORKER_EXIT_OK,
    WORKER_RESPAWN_LIMIT,
    WorkerPool,
    sockets_available,
)


class FakeProc:
    """A stand-in subprocess: pollable, terminable, crashable on cue."""

    def __init__(self):
        self.code = None
        self.terminated = False

    def poll(self):
        return self.code

    def wait(self, timeout=None):
        if self.code is None:
            raise subprocess.TimeoutExpired("fake", timeout)
        return self.code

    def terminate(self):
        self.terminated = True
        self.code = -15

    def kill(self):
        self.code = -9

    def crash(self, code=1):
        self.code = code


class TestWorkerPool:
    def _pool(self, slots=1):
        spawned = []

        def spawn(extra_args):
            proc = FakeProc()
            spawned.append(proc)
            return proc

        pool = WorkerPool([[] for _ in range(slots)], spawn)
        pool.spawn_all()
        return pool, spawned

    def test_respawn_budget_is_per_job(self):
        pool, spawned = self._pool()
        # First job: the slot crash-loops to its budget, then stays dead.
        for crashes in range(WORKER_RESPAWN_LIMIT):
            pool.procs[0].crash()
            pool.poll_respawn()
            assert pool.respawns == crashes + 1
        pool.procs[0].crash()
        pool.poll_respawn()
        assert pool.respawns == WORKER_RESPAWN_LIMIT, (
            "budget exceeded within one job"
        )
        # A new job resets the budget: the same slot is respawned again.
        pool.new_job_epoch()
        pool.poll_respawn()
        assert pool.respawns == WORKER_RESPAWN_LIMIT + 1
        assert pool.procs[0].poll() is None

    def test_clean_and_fault_exits_never_respawned(self):
        pool, spawned = self._pool(slots=2)
        pool.procs[0].crash(WORKER_EXIT_OK)
        pool.procs[1].crash(WORKER_EXIT_FAULT_INJECTED)
        for _ in range(3):
            pool.poll_respawn()
        assert pool.respawns == 0
        assert pool.procs == spawned[:2]
        # ... even across a job boundary: the budget reset must not turn
        # a clean shutdown or an injected fault into a relaunch.
        pool.new_job_epoch()
        pool.poll_respawn()
        assert pool.respawns == 0

    def test_spawn_failure_terminates_already_started(self):
        spawned = []

        def spawn(extra_args):
            if len(spawned) == 1:
                raise OSError("spawn exploded")
            proc = FakeProc()
            spawned.append(proc)
            return proc

        pool = WorkerPool([[], []], spawn)
        with pytest.raises(OSError, match="spawn exploded"):
            pool.spawn_all()
        assert len(spawned) == 1
        assert spawned[0].terminated, (
            "a failed spawn orphaned the already-started worker"
        )
        assert spawned[0].poll() is not None

    def test_reap_all_includes_replaced_exit_codes(self):
        pool, spawned = self._pool()
        pool.procs[0].crash(9)
        pool.poll_respawn()
        pool.procs[0].crash(WORKER_EXIT_OK)
        codes = pool.reap_all()
        assert sorted(codes) == [WORKER_EXIT_OK, 9]


@pytest.mark.distributed
@pytest.mark.skipif(
    not sockets_available(), reason="localhost sockets unavailable"
)
class TestMasterLifecycle:
    def _tracking_executor(self, **kwargs):
        """An executor whose spawned Popen objects are recorded."""
        executor = SocketExecutor(timeout=60.0, **kwargs)
        procs = []
        inner = executor._spawn_worker

        def tracking_spawn(extra_args):
            proc = inner(extra_args)
            procs.append(proc)
            return proc

        executor._spawn_worker = tracking_spawn
        return executor, procs

    def test_interrupted_run_reaps_all_spawned_workers(
        self, monkeypatch, pinned_config
    ):
        # The regression: an interrupt mid-campaign must terminate and
        # reap every --spawn-workers subprocess on the way out — no
        # child survives a raised run.
        from repro.experiments.executors import socket as socket_mod

        def interrupted(self, timeout):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            socket_mod._MasterState, "wait_done", interrupted
        )
        executor, procs = self._tracking_executor(spawn_workers=2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(pinned_config, executor=executor)
        assert len(procs) == 2
        assert all(proc.poll() is not None for proc in procs), (
            "interrupted master left worker subprocesses running"
        )
        assert len(executor.worker_exit_codes) == 2

    def test_mid_spawn_failure_reaps_earlier_workers(self, pinned_config):
        executor, procs = self._tracking_executor(spawn_workers=2)
        inner = executor._spawn_worker

        def failing_spawn(extra_args):
            if procs:
                raise OSError("second spawn exploded")
            return inner(extra_args)

        executor._spawn_worker = failing_spawn
        with pytest.raises(OSError, match="second spawn exploded"):
            run_campaign(pinned_config, executor=executor)
        assert len(procs) == 1
        assert procs[0].poll() is not None, (
            "mid-spawn failure orphaned the first worker"
        )

    def test_bind_port_zero_reports_actual_port(
        self, pinned_config, pinned_serial_rows
    ):
        # on_listen fires with the *bound* address: port 0 in, a real
        # ephemeral port out — what the CLI announce line prints.
        seen = []
        executor, _procs = self._tracking_executor(
            spawn_workers=2, port=0, on_listen=seen.append
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows
        assert len(seen) == 1
        host, port = seen[0]
        assert port != 0
        assert (host, port) == executor.address


def test_cli_builds_socket_executor_with_announce():
    """The CLI pre-builds socket executors so the announce line can
    carry the actually-bound address (not ``--bind``'s literal text)."""
    from repro.cli import _announce_master, _cli_executor
    from repro.experiments.api import CampaignSpec, ExecutorSpec

    spec = CampaignSpec(
        figure=1,
        executor=ExecutorSpec(kind="socket", bind="127.0.0.1:0",
                              spawn_workers=2),
    )
    executor = _cli_executor(spec)
    assert isinstance(executor, SocketExecutor)
    assert executor.on_listen is _announce_master
    assert (executor.host, executor.port) == ("127.0.0.1", 0)
    # non-socket kinds defer to Campaign's own builder
    assert _cli_executor(CampaignSpec(figure=1)) is None
