"""Tests for the algorithm comparison tool."""

import math

import pytest

from repro.experiments.compare import (
    COMPARABLE,
    compare_algorithms,
    comparison_table,
)
from tests.conftest import make_instance


@pytest.fixture(scope="module")
def rows():
    inst = make_instance(num_tasks=15, num_procs=5, seed=4)
    return compare_algorithms(inst, epsilon=1, samples=10, rng=0)


class TestCompare:
    def test_default_skips_heft_with_eps(self, rows):
        names = [r.algorithm for r in rows]
        assert "heft" not in names
        assert "caft" in names and "ftsa" in names

    def test_heft_included_at_eps0(self):
        inst = make_instance(num_tasks=12, num_procs=5)
        rows = compare_algorithms(inst, epsilon=0, crashes=0, rng=0)
        assert "heft" in [r.algorithm for r in rows]

    def test_metrics_sane(self, rows):
        for r in rows:
            assert r.latency > 0
            assert r.normalized >= 1.0
            assert r.upper_bound >= r.latency - 1e-9
            assert 0 <= r.replication_share <= 1
            assert 0.0 <= r.survival_rate <= 1.0

    def test_robust_algorithms_survive(self, rows):
        by_name = {r.algorithm: r for r in rows}
        for name in ("caft", "ftsa", "ftbar", "caft-batch"):
            assert by_name[name].survival_rate == 1.0

    def test_explicit_algorithm_list(self):
        inst = make_instance(num_tasks=12, num_procs=5)
        rows = compare_algorithms(
            inst, epsilon=1, algorithms=["caft", "ftsa"], samples=5, rng=0
        )
        assert [r.algorithm for r in rows] == ["caft", "ftsa"]

    def test_registry_complete(self):
        assert set(COMPARABLE) >= {
            "heft", "ftsa", "ftbar", "caft", "caft-paper", "caft-batch",
        }


class TestTable:
    def test_table_renders_all_rows(self, rows):
        table = comparison_table(rows)
        for r in rows:
            assert r.algorithm in table
        assert "latency" in table and "surv" in table

    def test_table_alignment(self, rows):
        lines = comparison_table(rows).splitlines()
        assert len({len(lines[0]), len(lines[1])}) <= 2  # header + rule match
