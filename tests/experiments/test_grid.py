"""Tests for the declarative scenario grid and its work units."""

import json
from dataclasses import replace

import pytest

from repro.experiments.config import FIGURES, ExperimentConfig
from repro.experiments.grid import ScenarioGrid, WorkUnit
from repro.experiments.harness import run_rep


@pytest.fixture(scope="module")
def tiny_cfg() -> ExperimentConfig:
    return ExperimentConfig(
        name="grid-tiny",
        granularities=(0.5, 1.5),
        num_procs=5,
        epsilon=1,
        crashes=1,
        num_graphs=3,
        task_range=(10, 12),
    )


class TestWorkUnit:
    def test_unit_id_is_scenario_qualified(self, tiny_cfg):
        unit = WorkUnit(tiny_cfg, 0.5, 2)
        assert unit.unit_id == "grid-tiny|oneport|clique|append|g=0.5|rep=2"
        routed = WorkUnit(tiny_cfg.with_network(topology="ring"), 0.5, 2)
        assert "routed-oneport|ring" in routed.unit_id
        assert routed.unit_id != unit.unit_id

    def test_unit_ids_distinguish_float_granularities(self, tiny_cfg):
        ids = {WorkUnit(tiny_cfg, g, 0).unit_id for g in (0.5, 1.5, 1.0, 0.2)}
        assert len(ids) == 4

    def test_scenario_tags(self, tiny_cfg):
        unit = WorkUnit(tiny_cfg, 1.5, 0)
        assert unit.scenario == {
            "config": "grid-tiny",
            "network": "oneport",
            "topology": "clique",
            "policy": "append",
        }

    def test_run_equals_run_rep(self, tiny_cfg):
        unit = WorkUnit(tiny_cfg, 0.5, 1)
        assert unit.run() == run_rep(tiny_cfg, 0.5, 1)

    def test_wire_round_trip(self, tiny_cfg):
        unit = WorkUnit(tiny_cfg.with_network(topology="star"), 1.5, 2)
        wired = json.loads(json.dumps(unit.to_dict()))
        rebuilt = WorkUnit.from_dict(wired)
        assert rebuilt == unit
        assert rebuilt.unit_id == unit.unit_id

    def test_wire_round_trip_preserves_results(self, tiny_cfg):
        unit = WorkUnit(tiny_cfg, 0.5, 0)
        rebuilt = WorkUnit.from_dict(json.loads(json.dumps(unit.to_dict())))
        assert rebuilt.run() == unit.run()


class TestScenarioGrid:
    def test_units_in_canonical_order(self, tiny_cfg):
        grid = ScenarioGrid.from_config(tiny_cfg)
        units = grid.units()
        assert len(units) == grid.total_units == 6
        assert [(u.granularity, u.rep) for u in units] == [
            (0.5, 0), (0.5, 1), (0.5, 2), (1.5, 0), (1.5, 1), (1.5, 2),
        ]

    def test_from_figure_applies_overrides(self):
        grid = ScenarioGrid.from_figure(2, num_graphs=4, topology="ring")
        (cfg,) = grid.configs
        assert cfg.name == "figure2" and cfg.num_graphs == 4
        assert cfg.model == "routed-oneport" and cfg.topology == "ring"

    def test_from_figure_rejects_bad_number(self):
        with pytest.raises(ValueError, match="figures 1-6"):
            ScenarioGrid.from_figure(9)

    def test_from_scenarios_keeps_seed_pairing(self, tiny_cfg):
        grid = ScenarioGrid.from_scenarios(
            tiny_cfg, topologies=("ring", "star"), policies=("insertion",)
        )
        assert len(grid.configs) == 4
        # Same name everywhere: all scenarios schedule the same instances.
        assert {c.name for c in grid.configs} == {"grid-tiny"}
        keys = {c.scenario_key() for c in grid.configs}
        assert len(keys) == 4

    def test_duplicate_scenarios_rejected(self, tiny_cfg):
        with pytest.raises(ValueError, match="duplicate scenario"):
            ScenarioGrid(configs=(tiny_cfg, tiny_cfg))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ScenarioGrid(configs=())

    def test_manifest_round_trip(self, tiny_cfg):
        grid = ScenarioGrid.from_scenarios(tiny_cfg, topologies=("ring",))
        rebuilt = ScenarioGrid.from_dict(json.loads(json.dumps(grid.to_dict())))
        assert rebuilt == grid
        assert [u.unit_id for u in rebuilt.units()] == [
            u.unit_id for u in grid.units()
        ]


class TestConfigSerialization:
    def test_round_trip_all_figures(self):
        for cfg in FIGURES.values():
            data = json.loads(json.dumps(cfg.to_dict()))
            assert ExperimentConfig.from_dict(data) == cfg

    def test_round_trip_scenario_variants(self, tiny_cfg):
        for cfg in (
            tiny_cfg,
            tiny_cfg.with_network(topology="torus"),
            tiny_cfg.with_network(policy="insertion"),
            replace(tiny_cfg, fast=False),
        ):
            assert ExperimentConfig.from_dict(
                json.loads(json.dumps(cfg.to_dict()))
            ) == cfg

    def test_unknown_keys_ignored(self, tiny_cfg):
        data = tiny_cfg.to_dict()
        data["added_in_a_future_version"] = 42
        assert ExperimentConfig.from_dict(data) == tiny_cfg
