"""Tests for the experiment harness (small repetition counts)."""

import math

import numpy as np
import pytest

from repro.dag.analysis import degree_stats
from repro.experiments.config import (
    FIGURES,
    GRANULARITY_SWEEP_A,
    GRANULARITY_SWEEP_B,
    ExperimentConfig,
    default_num_graphs,
)
from repro.experiments.harness import (
    ALGORITHM_RUNNERS,
    ParallelHarness,
    generate_instance,
    run_campaign,
    run_point,
    run_rep,
)
from repro.platform.heterogeneity import granularity


@pytest.fixture(scope="module")
def small_cfg() -> ExperimentConfig:
    return FIGURES[1].with_graphs(2)


class TestConfig:
    def test_sweeps_match_paper(self):
        assert GRANULARITY_SWEEP_A == (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
        assert GRANULARITY_SWEEP_B == tuple(float(i) for i in range(1, 11))

    def test_figures_cover_paper_grid(self):
        assert FIGURES[1].num_procs == 10 and FIGURES[1].epsilon == 1
        assert FIGURES[2].num_procs == 10 and FIGURES[2].epsilon == 3
        assert FIGURES[3].num_procs == 20 and FIGURES[3].epsilon == 5
        assert FIGURES[4].granularities == GRANULARITY_SWEEP_B
        assert FIGURES[5].crashes == 2
        assert FIGURES[6].crashes == 3

    def test_with_graphs(self):
        cfg = FIGURES[1].with_graphs(5)
        assert cfg.num_graphs == 5
        assert FIGURES[1].num_graphs == 60  # original untouched
        assert FIGURES[1].with_graphs(None).num_graphs == 60

    def test_default_num_graphs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPHS", "7")
        assert default_num_graphs() == 7
        monkeypatch.delenv("REPRO_GRAPHS")
        assert default_num_graphs() == 60


class TestGenerateInstance:
    def test_deterministic(self, small_cfg):
        a = generate_instance(small_cfg, 1.0, 0)
        b = generate_instance(small_cfg, 1.0, 0)
        assert a.graph == b.graph
        assert np.array_equal(a.exec_cost, b.exec_cost)
        assert np.array_equal(a.platform.delay_matrix, b.platform.delay_matrix)

    def test_reps_differ(self, small_cfg):
        a = generate_instance(small_cfg, 1.0, 0)
        b = generate_instance(small_cfg, 1.0, 1)
        assert a.graph != b.graph

    def test_task_count_in_range(self, small_cfg):
        for rep in range(5):
            inst = generate_instance(small_cfg, 0.4, rep)
            assert 80 <= inst.num_tasks <= 120

    def test_granularity_exact(self, small_cfg):
        for g in (0.2, 1.0, 2.0):
            inst = generate_instance(small_cfg, g, 0)
            assert granularity(inst.graph, inst.platform, inst.exec_cost) == pytest.approx(g)

    def test_degree_band(self, small_cfg):
        inst = generate_instance(small_cfg, 1.0, 2)
        stats = degree_stats(inst.graph)
        assert stats["max_in"] <= 3

    def test_platform_size(self, small_cfg):
        assert generate_instance(small_cfg, 1.0, 0).num_procs == 10

    def test_delay_range(self, small_cfg):
        inst = generate_instance(small_cfg, 1.0, 0)
        d = inst.platform.delay_matrix
        off = d[~np.eye(10, dtype=bool)]
        assert (off >= 0.5).all() and (off <= 1.0).all()


class TestRunPoint:
    @pytest.fixture(scope="class")
    def point(self):
        cfg = FIGURES[1].with_graphs(2)
        return run_point(cfg, 1.0)

    def test_all_algorithms_present(self, point):
        assert set(point.per_algorithm) == set(FIGURES[1].algorithms)

    def test_metrics_populated(self, point):
        for algo, ap in point.per_algorithm.items():
            assert len(ap.norm_latency) == 2
            assert all(x >= 1.0 for x in ap.norm_latency)
            assert all(u >= l - 1e-9 for u, l in zip(ap.norm_upper, ap.norm_latency))
            assert all(m > 0 for m in ap.messages)

    def test_overhead_nonnegative_for_replicated(self, point):
        # replication cannot beat the fault-free reference by construction
        # (same algorithm with eps=0); allow tiny numerical slack
        for algo in ("caft", "ftsa"):
            assert all(o > -5.0 for o in point.per_algorithm[algo].overhead_0crash)

    def test_faultfree_reference(self, point):
        assert point.faultfree_norm["caft"] >= 1.0

    def test_row_flattening(self, point):
        row = point.row()
        assert row["granularity"] == 1.0
        assert "caft_latency0" in row and "ftbar_overhead_crash" in row
        assert "faultfree_caft" in row

    def test_crash_failure_accounting(self, point):
        # failures only possible for the non-robust literal variant
        for algo in ("caft", "ftsa", "ftbar"):
            assert point.per_algorithm[algo].crash_failures == 0
        cp = point.per_algorithm["caft-paper"]
        assert cp.crash_failures + len(cp.norm_crash) == 2


class TestCampaign:
    def test_two_point_campaign(self):
        cfg = ExperimentConfig(
            name="mini",
            granularities=(0.5, 1.5),
            num_procs=6,
            epsilon=1,
            crashes=1,
            num_graphs=2,
            task_range=(15, 20),
        )
        result = run_campaign(cfg)
        assert len(result.points) == 2
        rows = result.rows()
        assert rows[0]["granularity"] == 0.5
        series = result.series("caft_latency0")
        assert len(series) == 2 and all(s >= 1 for s in series)

    def test_progress_callback(self):
        cfg = ExperimentConfig(
            name="mini2",
            granularities=(1.0,),
            num_procs=5,
            epsilon=1,
            crashes=1,
            num_graphs=2,
            task_range=(10, 12),
        )
        messages = []
        run_campaign(cfg, progress=messages.append)
        assert len(messages) == 2


class TestParallelHarness:
    @pytest.fixture(scope="class")
    def cfg(self):
        return ExperimentConfig(
            name="par",
            granularities=(0.5, 1.5),
            num_procs=6,
            epsilon=1,
            crashes=1,
            num_graphs=2,
            task_range=(12, 16),
        )

    def test_rep_is_pure_function_of_labels(self, cfg):
        a = run_rep(cfg, 0.5, 0)
        b = run_rep(cfg, 0.5, 0)
        assert a == b

    def test_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="CampaignSpec"):
            ParallelHarness(1)

    def test_workers_do_not_change_results(self, cfg):
        serial = run_campaign(cfg)
        with pytest.warns(DeprecationWarning):
            parallel = ParallelHarness(2, clamp=False).run_campaign(cfg)
        assert serial.rows() == parallel.rows()

    def test_parallel_progress_covers_all_jobs(self, cfg):
        messages = []
        with pytest.warns(DeprecationWarning):
            harness = ParallelHarness(2, clamp=False)
        harness.run_campaign(cfg, progress=messages.append)
        assert len(messages) == len(cfg.granularities) * cfg.num_graphs

    def test_workers_one_is_serial(self, cfg):
        with pytest.warns(DeprecationWarning):
            assert ParallelHarness(1).workers <= 1
            assert ParallelHarness(None).workers == 0

    def test_workers_clamped_to_cpus(self):
        import os

        cpus = os.cpu_count() or 1
        with pytest.warns(DeprecationWarning):
            assert ParallelHarness(cpus + 7).workers <= cpus
            assert ParallelHarness(cpus + 7, clamp=False).workers == cpus + 7

    def test_fast_flag_does_not_change_results(self, cfg):
        from dataclasses import replace

        fast = run_campaign(replace(cfg, fast=True))
        slow = run_campaign(replace(cfg, fast=False))
        assert fast.rows() == slow.rows()
