"""Tests for SVG/HTML rendering and the extra sweeps."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extra import (
    heterogeneity_sweep,
    platform_size_sweep,
    sweep_table,
)
from repro.experiments.harness import run_campaign
from repro.experiments.svg import (
    SvgLineChart,
    _nice_ticks,
    campaign_to_charts,
    write_html_report,
)


@pytest.fixture(scope="module")
def mini_result():
    cfg = ExperimentConfig(
        name="svg-mini",
        granularities=(0.5, 1.5),
        num_procs=6,
        epsilon=1,
        crashes=1,
        num_graphs=2,
        task_range=(15, 20),
    )
    return run_campaign(cfg)


class TestTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0 + 1e-9 and ticks[-1] >= 10.0 - 2.5

    def test_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0) == [5.0]

    def test_small_range(self):
        ticks = _nice_ticks(0.2, 2.0)
        assert len(ticks) >= 3
        assert ticks == sorted(ticks)


class TestSvgLineChart:
    def test_renders_valid_svg(self):
        chart = SvgLineChart("t", "x", "y")
        chart.add_series("a", [0, 1, 2], [1.0, 2.0, 1.5])
        svg = chart.render()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg
        assert ">t<" in svg  # title text

    def test_nan_points_dropped(self):
        chart = SvgLineChart("t", "x", "y")
        chart.add_series("a", [0, 1, 2], [1.0, float("nan"), 2.0])
        svg = chart.render()
        assert svg.count("<circle") == 2

    def test_empty_chart(self):
        svg = SvgLineChart("t", "x", "y").render()
        assert "<svg" in svg

    def test_legend_entries(self):
        chart = SvgLineChart("t", "x", "y")
        chart.add_series("alpha", [0, 1], [1, 2])
        chart.add_series("beta", [0, 1], [2, 3])
        svg = chart.render()
        assert "alpha" in svg and "beta" in svg

    def test_escapes_html(self):
        chart = SvgLineChart("<script>", "x", "y")
        chart.add_series("a&b", [0, 1], [1, 2])
        svg = chart.render()
        assert "<script>" not in svg.replace("&lt;script&gt;", "")
        assert "a&amp;b" in svg


class TestCampaignCharts:
    def test_four_panels(self, mini_result):
        charts = campaign_to_charts(mini_result)
        assert len(charts) == 4
        titles = [c.title for c in charts]
        assert any("(a)" in t for t in titles)
        assert any("(c)" in t for t in titles)
        assert any("messages" in t for t in titles)

    def test_html_report(self, mini_result, tmp_path):
        path = write_html_report(mini_result, tmp_path / "report.html")
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert text.count("<svg") == 4
        assert "svg-mini" in text


class TestExtraSweeps:
    def test_heterogeneity_sweep_shape(self):
        results = heterogeneity_sweep(
            factors=(0.0, 1.0), num_procs=5, num_graphs=1,
        )
        assert [h for h, _p in results] == [0.0, 1.0]
        for _h, point in results:
            assert point.per_algorithm["caft"].mean("norm_latency") >= 1.0

    def test_platform_size_sweep_shape(self):
        results = platform_size_sweep(sizes=(4, 6), num_graphs=1)
        assert [m for m, _p in results] == [4, 6]

    def test_sweep_table_format(self):
        results = platform_size_sweep(sizes=(4,), num_graphs=1)
        table = sweep_table(results, metric="norm_latency", label="m")
        assert "caft" in table and "ftsa" in table
        assert "4" in table

    def test_sweep_table_empty(self):
        assert sweep_table([]) == "(empty sweep)"
