"""The online workload subsystem (marker: ``online``).

Pins the subsystem's three determinism contracts:

* **Purity** — an online work unit (``run_online_rep``) is a function of
  ``(config, rate, rep)`` alone, and the whole campaign produces
  bit-identical stored rows on every executor (the same conformance
  harness the offline path runs through);
* **Trace replay** — a ``"trace"`` arrival spec recorded from a live
  run *is* the original workload: same instants, same priorities, same
  job graphs, same rows;
* **Model equivalence** — the correlated failure model with singleton
  domains makes exactly the i.i.d. draws, and an explicit
  ``failure_model = {kind = "iid"}`` table leaves an *offline*
  campaign's rows untouched — naming the paper's default changes
  nothing.
"""

from dataclasses import replace

import numpy as np
import pytest

import executor_conformance as ec
from repro.experiments.arrival import (
    ArrivalSpec,
    generate_arrivals,
    recorded_trace,
)
from repro.experiments.config import FIGURES
from repro.experiments.harness import run_rep
from repro.experiments.online import OnlineHarness, run_online_rep
from repro.experiments.store import result_to_dict
from repro.fault.model import (
    CorrelatedFailureModel,
    FailureModel,
    FailureSpec,
)

pytestmark = pytest.mark.online


def online_config(**overrides):
    """Figure 1 shrunk to an online test campaign: two arrival rates,
    two reps, a three-job Poisson stream, correlated failure domains."""
    base = replace(
        FIGURES[1].with_graphs(2),
        granularities=(0.01, 0.02),
        num_procs=6,
        epsilon=1,
        crashes=1,
        task_range=(10, 14),
        algorithms=("caft", "ftsa"),
        arrival=ArrivalSpec(kind="poisson", jobs=3, granularity=0.2),
        failure=FailureSpec(kind="domains", domain_size=2),
    )
    return replace(base, **overrides)


def _arrival_kwargs(config):
    return dict(
        base_seed=config.base_seed,
        name=config.name,
        task_range=config.task_range,
        degree_range=config.degree_range,
        volume_range=config.volume_range,
    )


class TestRepPurity:
    def test_rep_is_deterministic(self):
        config = online_config()
        first = result_to_dict(run_online_rep(config, 0.01, 0))
        again = result_to_dict(run_online_rep(config, 0.01, 0))
        assert first == again

    def test_rep_dispatch_through_run_rep(self):
        """The offline entry point routes online configs to the online
        harness — executors never need to know which kind they run."""
        config = online_config()
        assert result_to_dict(run_rep(config, 0.02, 1)) == result_to_dict(
            run_online_rep(config, 0.02, 1)
        )

    def test_every_metric_column_is_populated(self):
        from repro.experiments.online import ONLINE_METRICS

        result = run_online_rep(online_config(), 0.02, 0)
        for algo in ("caft", "ftsa"):
            row = result.metrics[algo]
            assert set(row) == set(ONLINE_METRICS)
            assert result.faultfree_norm[algo] >= 1.0

    def test_jobs_are_actually_scheduled_online(self):
        """Arrivals gate starts: no job starts before it arrives, and
        the stream's records are internally consistent."""
        config = online_config()
        records = OnlineHarness(config, 0.02, 0).run("caft")
        assert len(records) == 3
        for r in records:
            assert r.start >= r.arrival
            assert r.finish == pytest.approx(r.start + r.makespan)
            assert r.response == pytest.approx(r.queueing + r.makespan)
            assert 1 <= len(r.procs) <= config.num_procs


class TestTraceReplay:
    def test_recorded_trace_replays_bit_identically(self):
        config = online_config()
        spec = config.arrival
        events = generate_arrivals(spec, 0.01, 0, **_arrival_kwargs(config))
        replay_spec = recorded_trace(events, spec)
        replayed = generate_arrivals(
            replay_spec, 0.01, 0, **_arrival_kwargs(config)
        )
        assert len(replayed) == len(events)
        for original, copy in zip(events, replayed):
            assert copy.time == original.time
            assert copy.priority == original.priority
            assert copy.graph == original.graph

    def test_replayed_campaign_rows_match(self):
        """The whole rep — not just the arrivals — replays identically
        from a recorded trace."""
        config = online_config()
        events = generate_arrivals(
            config.arrival, 0.01, 0, **_arrival_kwargs(config)
        )
        replay = replace(
            config, arrival=recorded_trace(events, config.arrival)
        )
        assert result_to_dict(run_online_rep(replay, 0.01, 0)) == (
            result_to_dict(run_online_rep(config, 0.01, 0))
        )


class TestFailureModelEquivalence:
    def test_singleton_domains_draw_iid_pools(self):
        iid = FailureModel()
        singleton = CorrelatedFailureModel([(p,) for p in range(8)])
        assert singleton.event_members(8) == iid.event_members(8)
        pool_a = iid.draw_event_pool(8, 16, np.random.default_rng(7))
        pool_b = singleton.draw_event_pool(8, 16, np.random.default_rng(7))
        assert (pool_a == pool_b).all()

    def test_singleton_domains_draw_iid_scenarios(self):
        iid = FailureModel()
        singleton = CorrelatedFailureModel([(p,) for p in range(8)])
        for time_range in (None, (0.0, 5.0)):
            a = iid.draw_scenario(
                8, 3, np.random.default_rng(11), time_range=time_range
            )
            b = singleton.draw_scenario(
                8, 3, np.random.default_rng(11), time_range=time_range
            )
            assert a == b

    def test_correlated_domains_fail_together(self):
        model = CorrelatedFailureModel([(0, 1), (2, 3), (4, 5)])
        for seed in range(20):
            scenario = model.draw_scenario(6, 1, np.random.default_rng(seed))
            assert scenario.failed_procs in ((0, 1), (2, 3), (4, 5))
            times = {scenario.fail_time(p) for p in scenario.failed_procs}
            assert len(times) == 1  # one event, one instant

    def test_naming_iid_changes_no_offline_row(self):
        """An offline campaign that spells out the paper's default
        failure model stores the same bits as one that never mentions
        it — the spec surface is additive."""
        config = replace(
            FIGURES[1].with_graphs(1),
            granularities=(0.6,),
            num_procs=6,
            task_range=(10, 14),
            algorithms=("caft",),
        )
        spelled = replace(config, failure=FailureSpec(kind="iid"))
        assert result_to_dict(run_rep(spelled, 0.6, 0)) == result_to_dict(
            run_rep(config, 0.6, 0)
        )


class TestOnlineExecutorConformance:
    """Online campaigns run the unchanged executor stack: stored rows
    are bit-identical to the serial baseline on every executor, for a
    Poisson stream and for a recorded-trace replay."""

    @pytest.fixture(scope="class")
    def poisson_baseline(self, tmp_path_factory):
        config = online_config()
        directory = tmp_path_factory.mktemp("online") / "baseline"
        return config, ec.run_cell(config, "serial", "none", directory)

    @pytest.mark.parametrize("executor_name", ("process", "socket"))
    def test_executors_match_serial(
        self, executor_name, poisson_baseline, tmp_path
    ):
        if executor_name == "socket" and not ec.sockets_available():
            pytest.skip("localhost sockets unavailable")
        config, baseline = poisson_baseline
        rows = ec.run_cell(config, executor_name, "none", tmp_path / "cell")
        assert rows == baseline

    def test_resume_after_abort_matches_serial(
        self, poisson_baseline, tmp_path
    ):
        config, baseline = poisson_baseline
        rows = ec.run_cell(
            config, "process", "worker-crash", tmp_path / "cell"
        )
        assert rows == baseline

    def test_service_executor_matches_serial(
        self, poisson_baseline, tmp_path
    ):
        """The fourth executor of the determinism matrix: an online
        campaign relayed through a running CampaignService streams the
        same bits back into the local store."""
        if not ec.sockets_available():
            pytest.skip("localhost sockets unavailable")
        from repro.experiments.api import (
            Campaign,
            CampaignSpec,
            ExecutorSpec,
            StoreSpec,
        )
        from repro.experiments.service import CampaignService

        config, baseline = poisson_baseline
        with CampaignService(tmp_path / "svc", spawn_workers=2) as service:
            host, port = service.start()
            spec = CampaignSpec(
                config=config,
                executor=ExecutorSpec(
                    kind="service",
                    address=f"{host}:{port}",
                    timeout=ec.DEADLINE_S,
                ),
                store=StoreSpec(directory=str(tmp_path / "local")),
            )
            Campaign(spec).run()
        assert ec.stored_rows(tmp_path / "local") == baseline

    def test_trace_replay_cell_across_executors(self, tmp_path):
        config = online_config()
        events = generate_arrivals(
            config.arrival, 0.01, 0, **_arrival_kwargs(config)
        )
        config = replace(
            config,
            granularities=(0.01,),
            arrival=recorded_trace(events, config.arrival),
        )
        baseline = ec.run_cell(config, "serial", "none", tmp_path / "serial")
        rows = ec.run_cell(config, "process", "none", tmp_path / "process")
        assert rows == baseline
