"""Tests for the columnar results backend and the streaming query layer.

The contract under test is *equivalence*: a columnar store must be
indistinguishable from the JSONL store through every read surface —
``rep_rows``, ``iter_rows``, the stats fast paths, campaign comparisons,
dedup attribution — while holding the same append-only/idempotent/
crash-repair discipline over its sealed ``chunk-*.npz`` files and
``tail.jsonl`` active chunk.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import (
    CampaignConfigError,
    ColumnarStore,
    RunStore,
    ScenarioGrid,
    StoreCampaignView,
    StoreError,
    StoreSpec,
    aggregate_points,
    campaign_comparison_table,
    compare_reps,
    make_store,
    open_store,
    paired_rep_series,
    read_store_backend,
    rep_series,
    run_grid,
)
from repro.experiments.columnar import INDEX_NAME
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import WorkUnit, unit_id_for
from repro.experiments.harness import RepResult
from repro.experiments.store import COLUMNAR_TAIL_NAME, ROWS_NAME

from test_store import fake_result


@pytest.fixture(scope="module")
def cfg() -> ExperimentConfig:
    return ExperimentConfig(
        name="columnar-test",
        granularities=(0.5, 1.5),
        num_procs=4,
        epsilon=1,
        crashes=1,
        num_graphs=3,
        task_range=(8, 10),
    )


@pytest.fixture(scope="module")
def small_campaign_cfg() -> ExperimentConfig:
    """A real (executed) campaign small enough for equivalence sweeps."""
    from dataclasses import replace

    from repro.experiments.config import FIGURES

    return replace(
        FIGURES[1].with_graphs(2),
        granularities=(0.4, 1.2),
        num_procs=4,
        task_range=(8, 12),
    )


def fill_both(cfg, tmp_path, chunk_rows=3, order=None):
    """The same synthetic appends into a JSONL and a columnar store."""
    units = [
        WorkUnit(cfg, g, rep)
        for g in cfg.granularities
        for rep in range(cfg.num_graphs)
    ]
    if order is not None:
        units = [units[i] for i in order]
    jsonl = RunStore(tmp_path / "jsonl")
    columnar = ColumnarStore(tmp_path / "columnar", chunk_rows=chunk_rows)
    for u in units:
        result = fake_result(u.granularity, u.rep)
        assert jsonl.append(u, result)
        assert columnar.append(u, result)
    jsonl.close()
    columnar.close()
    return units


class TestCrossBackendEquivalence:
    def test_rep_rows_identical(self, cfg, tmp_path):
        fill_both(cfg, tmp_path)
        with open_store(tmp_path / "jsonl") as js, open_store(
            tmp_path / "columnar"
        ) as cs:
            assert js.rep_rows() == cs.rep_rows()

    def test_out_of_order_appends_converge(self, cfg, tmp_path):
        # Canonical ordering is a property of the read path, not the
        # append order: a scrambled campaign reads back identically.
        fill_both(cfg, tmp_path, order=[5, 0, 3, 1, 4, 2])
        with open_store(tmp_path / "jsonl") as js, open_store(
            tmp_path / "columnar"
        ) as cs:
            rows = cs.rep_rows()
            assert rows == js.rep_rows()
            assert rows == sorted(
                rows,
                key=lambda r: (
                    r["config"], r["network"], r["topology"], r["policy"],
                    r["granularity"], r["rep"], r["algorithm"],
                ),
            )

    def test_every_chunk_size_reads_back_the_same(self, cfg, tmp_path):
        reference = None
        for chunk_rows in (1, 2, 4, 100):
            d = tmp_path / f"rows{chunk_rows}"
            d.mkdir()
            fill_both(cfg, d, chunk_rows=chunk_rows)
            with open_store(d / "columnar") as cs:
                rows = cs.rep_rows()
            if reference is None:
                reference = rows
            assert rows == reference, f"chunk_rows={chunk_rows} diverged"

    def test_results_and_lookups_identical(self, cfg, tmp_path):
        units = fill_both(cfg, tmp_path)
        with open_store(tmp_path / "jsonl") as js, open_store(
            tmp_path / "columnar"
        ) as cs:
            assert len(js) == len(cs) == len(units)
            assert js.completed_ids() == cs.completed_ids()
            for u in units:
                assert u.unit_id in cs
                assert js.result(u.unit_id) == cs.result(u.unit_id)
            assert js.results() == cs.results()

    def test_executed_campaign_statistics_bit_identical(
        self, small_campaign_cfg, tmp_path
    ):
        grid = ScenarioGrid.from_config(small_campaign_cfg)
        res_jsonl = run_grid(grid, store=RunStore(tmp_path / "jsonl"))
        res_col = run_grid(
            grid, store=ColumnarStore(tmp_path / "columnar", chunk_rows=3)
        )
        assert [r.points for r in res_jsonl] == [r.points for r in res_col]
        with open_store(tmp_path / "jsonl") as js, open_store(
            tmp_path / "columnar"
        ) as cs:
            rows = js.rep_rows()
            assert rows == cs.rep_rows()
            algos = sorted({r["algorithm"] for r in rows})
            for algo in algos:
                assert rep_series(rows, algo) == rep_series(cs, algo)
                assert rep_series(
                    rows, algo, "messages", where={"granularity": 0.4}
                ) == rep_series(cs, algo, "messages", where={"granularity": 0.4})
            a, b = algos[0], algos[1]
            assert paired_rep_series(rows, a, b) == paired_rep_series(cs, a, b)
            assert compare_reps(rows, a, b) == compare_reps(cs, a, b)
            assert campaign_comparison_table(js) == campaign_comparison_table(
                cs
            )
            assert js.dedup_stats() == cs.dedup_stats()

    def test_streaming_view_matches_in_memory_campaign(
        self, small_campaign_cfg, tmp_path
    ):
        grid = ScenarioGrid.from_config(small_campaign_cfg)
        [result] = run_grid(
            grid, store=ColumnarStore(tmp_path / "c", chunk_rows=3)
        )
        with open_store(tmp_path / "c") as cs:
            view = StoreCampaignView(cs, small_campaign_cfg)
            assert view.points == result.points
            assert view.rows() == result.rows()
            assert view.series("caft_latency0") == result.series(
                "caft_latency0"
            )
            assert view.rep_rows() == cs.rep_rows()
            assert aggregate_points(cs, small_campaign_cfg) == result.points

    def test_report_and_svg_render_from_streaming_view(
        self, small_campaign_cfg, tmp_path
    ):
        """The report/SVG layers run straight off a store view and emit
        byte-identical output to the in-memory campaign path."""
        from repro.experiments.report import render_figure
        from repro.experiments.svg import write_html_report

        grid = ScenarioGrid.from_config(small_campaign_cfg)
        [result] = run_grid(
            grid, store=ColumnarStore(tmp_path / "c", chunk_rows=3)
        )
        with open_store(tmp_path / "c") as cs:
            view = StoreCampaignView(cs, small_campaign_cfg)
            assert render_figure(view) == render_figure(result)
            from_view = write_html_report(view, tmp_path / "view.html")
            from_mem = write_html_report(result, tmp_path / "mem.html")
            assert from_view.read_text() == from_mem.read_text()


class TestIterRows:
    def test_where_and_columns_match_manual_filter(self, cfg, tmp_path):
        fill_both(cfg, tmp_path)
        cases = [
            (None, None),
            ({"granularity": 0.5}, None),
            ({"rep": [0, 2]}, ("granularity", "rep", "norm_latency")),
            ({"algorithm": "caft", "rep": 1}, ("norm_crash",)),
            ({"config": cfg.name}, None),
            ({"config": "no-such-campaign"}, None),
            ({"norm_crash": None}, ("rep",)),
        ]
        with open_store(tmp_path / "jsonl") as js, open_store(
            tmp_path / "columnar"
        ) as cs:
            for where, columns in cases:
                got_j = list(js.iter_rows(where=where, columns=columns))
                got_c = list(cs.iter_rows(where=where, columns=columns))
                assert got_j == got_c, (where, columns)

    def test_projection_decodes_only_requested_columns(self, cfg, tmp_path):
        fill_both(cfg, tmp_path)
        with open_store(tmp_path / "columnar") as cs:
            rows = list(cs.iter_rows(columns=("rep", "algorithm")))
            assert rows
            assert all(set(r) == {"rep", "algorithm"} for r in rows)

    def test_unknown_projected_column_raises(self, cfg, tmp_path):
        fill_both(cfg, tmp_path)
        with open_store(tmp_path / "columnar") as cs:
            with pytest.raises(KeyError):
                list(cs.iter_rows(columns=("no_such_metric",)))

    def test_pruned_chunks_are_never_opened(self, cfg, tmp_path):
        fill_both(cfg, tmp_path, chunk_rows=1)
        with open_store(tmp_path / "columnar") as cs:
            opened = []
            original = cs._chunk_path

            def spying(meta):
                opened.append(meta.name)
                return original(meta)

            cs._chunk_path = spying
            assert list(cs.iter_rows(where={"config": "elsewhere"})) == []
            assert opened == []


class TestColumnarCorruptionMatrix:
    def test_every_truncation_point_of_the_tail(self, cfg, tmp_path):
        """Chop ``tail.jsonl`` at every byte boundary — with sealed
        chunks present — and assert load + repair + resume never loses a
        sealed row, never duplicates one, and never rewrites a chunk."""
        units = [
            WorkUnit(cfg, g, rep)
            for g in cfg.granularities
            for rep in range(cfg.num_graphs)
        ]
        results = {u.unit_id: fake_result(u.granularity, u.rep) for u in units}
        ref = tmp_path / "ref"
        store = ColumnarStore(ref, chunk_rows=4)
        for u in units:  # 6 single-row units: one sealed chunk + 2 tail rows
            store.append(u, results[u.unit_id])
        store.close()
        chunk_blobs = {
            p.name: p.read_bytes() for p in ref.glob("chunk-*.npz")
        }
        assert len(chunk_blobs) == 1
        sealed = 4
        tail = (ref / COLUMNAR_TAIL_NAME).read_bytes()
        index_blob = (ref / INDEX_NAME).read_bytes()

        for cut in range(len(tail) + 1):
            directory = tmp_path / f"cut{cut}"
            directory.mkdir()
            for name, blob in chunk_blobs.items():
                (directory / name).write_bytes(blob)
            (directory / INDEX_NAME).write_bytes(index_blob)
            (directory / COLUMNAR_TAIL_NAME).write_bytes(tail[:cut])

            store = ColumnarStore(directory, chunk_rows=4)
            assert sealed <= len(store) <= len(units), f"cut={cut}"
            # Resume: rerun everything (duplicate delivery included).
            for u in units:
                store.append(u, results[u.unit_id])
            store.close()

            final = ColumnarStore(directory, chunk_rows=4)
            assert len(final) == len(units), f"cut={cut}"
            for u in units:
                assert final.result(u.unit_id) == results[u.unit_id], (
                    f"cut={cut} corrupted {u.unit_id}"
                )
            final.close()
            for name, blob in chunk_blobs.items():
                assert (directory / name).read_bytes() == blob, (
                    f"cut={cut} rewrote sealed chunk {name}"
                )

    def test_seal_crash_overlap_counts_replayed_rows(self, cfg, tmp_path):
        # A kill between the chunk rename and the tail truncation leaves
        # the sealed rows *also* in the tail; the reload must dedup them
        # and surface the overlap as replayed_rows.
        units = [WorkUnit(cfg, 0.5, rep) for rep in range(3)]
        store = ColumnarStore(tmp_path / "c", chunk_rows=3)
        jsonl = RunStore(tmp_path / "j")  # same record bytes as the tail
        for u in units:
            result = fake_result(u.granularity, u.rep)
            store.append(u, result)
            jsonl.append(u, result)
        store.close()
        jsonl.close()
        tail = tmp_path / "c" / COLUMNAR_TAIL_NAME
        assert tail.read_bytes() == b""  # the seal truncated it
        tail.write_bytes((tmp_path / "j" / ROWS_NAME).read_bytes())

        reloaded = ColumnarStore(tmp_path / "c", chunk_rows=3)
        assert len(reloaded) == 3
        assert reloaded.dedup_stats() == {
            "duplicate_appends": 0,
            "replayed_rows": 3,
        }

    def test_missing_index_is_rederived(self, cfg, tmp_path):
        fill_both(cfg, tmp_path, chunk_rows=2)
        (tmp_path / "columnar" / INDEX_NAME).unlink()
        with open_store(tmp_path / "columnar") as cs, open_store(
            tmp_path / "jsonl"
        ) as js:
            assert cs.rep_rows() == js.rep_rows()

    def test_corrupt_index_is_rederived(self, cfg, tmp_path):
        fill_both(cfg, tmp_path, chunk_rows=2)
        (tmp_path / "columnar" / INDEX_NAME).write_text("{not json")
        with open_store(tmp_path / "columnar") as cs, open_store(
            tmp_path / "jsonl"
        ) as js:
            assert cs.rep_rows() == js.rep_rows()

    def test_corrupt_chunk_raises_store_error(self, cfg, tmp_path):
        fill_both(cfg, tmp_path, chunk_rows=2)
        [chunk] = (tmp_path / "columnar").glob("chunk-000000.npz")
        chunk.write_bytes(chunk.read_bytes()[:30])
        (tmp_path / "columnar" / INDEX_NAME).unlink()  # force npz re-derive
        with pytest.raises(StoreError, match="corrupt columnar chunk"):
            ColumnarStore(tmp_path / "columnar")

    def test_partial_seal_tmp_file_is_ignored(self, cfg, tmp_path):
        fill_both(cfg, tmp_path, chunk_rows=2)
        # A kill mid-seal leaves chunk-NNNNNN.tmp; loads must skip it and
        # the next seal must not collide with it.
        (tmp_path / "columnar" / "chunk-000099.tmp").write_bytes(b"garbage")
        with open_store(tmp_path / "columnar") as cs, open_store(
            tmp_path / "jsonl"
        ) as js:
            assert cs.rep_rows() == js.rep_rows()


class TestBackendIdentity:
    def test_open_store_sniffs_both_backends(self, cfg, tmp_path):
        fill_both(cfg, tmp_path)
        assert read_store_backend(tmp_path / "jsonl") == "jsonl"
        assert read_store_backend(tmp_path / "columnar") == "columnar"
        with open_store(tmp_path / "jsonl") as s:
            assert isinstance(s, RunStore) and not isinstance(s, ColumnarStore)
        with open_store(tmp_path / "columnar") as s:
            assert isinstance(s, ColumnarStore)

    def test_wrong_backend_class_refuses_directory(self, cfg, tmp_path):
        fill_both(cfg, tmp_path)
        with pytest.raises(StoreError, match="columnar"):
            RunStore(tmp_path / "columnar")
        with pytest.raises(StoreError, match="jsonl"):
            ColumnarStore(tmp_path / "jsonl")

    def test_manifest_backend_mismatch_refused(self, cfg, tmp_path):
        grid = ScenarioGrid.from_config(cfg)
        with ColumnarStore(tmp_path / "s", chunk_rows=4) as store:
            store.ensure_manifest(grid)
        # Fake a tooling mistake: a jsonl store handed a columnar manifest.
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        assert manifest["backend"] == "columnar"
        other = tmp_path / "other"
        other.mkdir()
        (other / "manifest.json").write_text(json.dumps(manifest))
        with RunStore(other) as store:
            with pytest.raises(StoreError, match="backend"):
                store.ensure_manifest(grid)

    def test_columnar_requires_directory(self):
        with pytest.raises(StoreError, match="directory"):
            ColumnarStore(None)

    def test_make_store_registry(self, tmp_path):
        assert isinstance(
            make_store("columnar", tmp_path / "c"), ColumnarStore
        )
        assert isinstance(make_store("jsonl", tmp_path / "j"), RunStore)
        memory = make_store("memory", None)
        assert isinstance(memory, RunStore)
        assert memory.directory is None


class TestStoreSpecColumnar:
    def test_columnar_without_directory_rejected(self):
        with pytest.raises(CampaignConfigError, match="store.directory"):
            StoreSpec(backend="columnar")

    def test_round_trip_and_build(self, tmp_path):
        spec = StoreSpec(backend="columnar", directory=str(tmp_path / "c"))
        again = StoreSpec.from_dict(spec.to_dict())
        assert again == spec
        store = again.build()
        try:
            assert isinstance(store, ColumnarStore)
        finally:
            store.close()


class TestHypothesisRoundTrip:
    """Dictionary-encoded tags and float columns survive any value."""

    tag_text = st.text(
        alphabet=st.characters(exclude_characters="\x00"),
        min_size=1,
        max_size=25,
    )
    metric_value = st.none() | st.floats(
        allow_nan=False, allow_infinity=True, width=64
    )

    @settings(max_examples=40, deadline=None)
    @given(
        name=tag_text,
        algos=st.lists(tag_text, min_size=1, max_size=3, unique=True),
        # int granularities round-trip through the f8 column + int flag,
        # so stay within float64's exact-integer range
        granularity=st.one_of(
            st.integers(-(2 ** 53), 2 ** 53),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
        ),
        faultfree=st.floats(allow_nan=False, allow_infinity=True, width=64),
        data=st.data(),
    )
    def test_unicode_tags_and_floats_round_trip(
        self, tmp_path_factory, name, algos, granularity, faultfree, data
    ):
        tags = {
            "config": name,
            "network": "oneport",
            "topology": "clique",
            "policy": "append",
        }

        class StubUnit:
            scenario = tags
            locality_key = (name, "oneport")

            def __init__(self, granularity, rep):
                self.granularity = granularity
                self.rep = rep

            @property
            def unit_id(self):
                return unit_id_for(
                    tags["config"], tags["network"], tags["topology"],
                    tags["policy"], self.granularity, self.rep,
                )

        metric_names = ("norm_latency", "norm_upper", "messages", "norm_crash")
        results = {}
        units = []
        for rep in range(3):
            metrics = {}
            for algo in algos:
                vals = [data.draw(self.metric_value) for _ in metric_names]
                metrics[algo] = dict(zip(metric_names, vals))
            results[rep] = RepResult(
                granularity=granularity,
                rep=rep,
                faultfree_norm={a: faultfree for a in algos},
                metrics=metrics,
            )
            units.append(StubUnit(granularity, rep))
        directory = tmp_path_factory.mktemp("hyp") / "c"
        store = ColumnarStore(directory, chunk_rows=2)
        for u in units:
            assert store.append(u, results[u.rep])
        store.close()

        reloaded = ColumnarStore(directory, chunk_rows=2)
        assert len(reloaded) == len(units)
        for u in units:
            assert reloaded.result(u.unit_id) == results[u.rep]
        assert reloaded.dedup_stats() == {
            "duplicate_appends": 0,
            "replayed_rows": 0,
        }
        reloaded.close()

    def test_huge_base_seed_survives_the_manifest(self, tmp_path):
        cfg = ExperimentConfig(
            name="seed-test \U0001f409",  # astral tag round-trips too
            granularities=(0.5,),
            num_procs=4,
            epsilon=1,
            crashes=1,
            num_graphs=1,
            base_seed=2 ** 96 + 7,
            task_range=(8, 10),
        )
        grid = ScenarioGrid.from_config(cfg)
        with ColumnarStore(tmp_path / "c", chunk_rows=2) as store:
            store.ensure_manifest(grid)
        with open_store(tmp_path / "c") as reloaded:
            assert reloaded.read_manifest_grid() == grid


class TestSealSemantics:
    def test_heterogeneous_metric_schema_raises(self, cfg, tmp_path):
        store = ColumnarStore(tmp_path / "c", chunk_rows=2)
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        odd = RepResult(
            granularity=0.5,
            rep=1,
            faultfree_norm={"caft": 1.0},
            metrics={"caft": {"only_metric": 1.0}},
        )
        with pytest.raises(StoreError, match="uniform"):
            store.append(WorkUnit(cfg, 0.5, 1), odd)

    def test_sealed_chunks_are_append_only(self, cfg, tmp_path):
        store = ColumnarStore(tmp_path / "c", chunk_rows=1)
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        blob = (tmp_path / "c" / "chunk-000000.npz").read_bytes()
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        assert (tmp_path / "c" / "chunk-000000.npz").read_bytes() == blob
        assert (tmp_path / "c" / "chunk-000001.npz").exists()

    def test_duplicate_of_sealed_unit_is_swallowed(self, cfg, tmp_path):
        store = ColumnarStore(tmp_path / "c", chunk_rows=1)
        unit = WorkUnit(cfg, 0.5, 0)
        assert store.append(unit, fake_result(0.5, 0))
        assert not store.append(
            unit, fake_result(0.5, 0), attempt="speculative"
        )
        assert store.dedup_stats() == {
            "duplicate_appends": 1,
            "replayed_rows": 0,
            "by_attempt": {"speculative": 1},
        }
        store.close()
