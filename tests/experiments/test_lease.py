"""Unit tests for lease sizing, locality keys, and chunked submission.

Pure-python and fast: the wire-level lease behaviour is covered by
``test_socket_executor.py`` (marked ``distributed``) and the full
fault matrix by ``test_conformance.py`` (marked ``conformance``).
"""

from dataclasses import replace

import pytest

from repro.experiments import LeasePolicy
from repro.experiments.config import FIGURES
from repro.experiments.executors import ProcessExecutor, make_executor
from repro.experiments.grid import ScenarioGrid, WorkUnit


@pytest.fixture()
def small_config():
    return replace(
        FIGURES[1].with_graphs(2),
        granularities=(0.4, 1.2),
        num_procs=6,
        task_range=(12, 18),
    )


class TestFromSpec:
    def test_default_and_auto_are_adaptive(self):
        assert LeasePolicy.from_spec(None).adaptive
        assert LeasePolicy.from_spec("auto").adaptive

    def test_int_and_digit_string_pin_size(self):
        assert LeasePolicy.from_spec(4).size == 4
        assert LeasePolicy.from_spec("4").size == 4

    def test_instance_passes_through(self):
        policy = LeasePolicy(size=7)
        assert LeasePolicy.from_spec(policy) is policy

    def test_target_seconds_seeds_adaptive(self):
        assert LeasePolicy.from_spec("auto", target_seconds=3.0).target_seconds == 3.0

    @pytest.mark.parametrize("bad", ["fast", "", 0, -2, 1.5])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            LeasePolicy.from_spec(bad)


class TestAdaptiveSizing:
    def test_starts_at_min_size_before_any_sample(self):
        policy = LeasePolicy(target_seconds=1.0)
        assert policy.lease_size(100) == policy.min_size

    def test_sizes_to_target_over_observed_latency(self):
        policy = LeasePolicy(target_seconds=1.0)
        policy.observe(0.1)
        assert policy.lease_size(100) == 10

    def test_ewma_tracks_latency_changes(self):
        policy = LeasePolicy(target_seconds=1.0, ewma_alpha=0.5)
        policy.observe(0.1)
        policy.observe(0.3)  # average moves to 0.2
        assert policy.observed_unit_seconds == pytest.approx(0.2)
        assert policy.lease_size(100) == 5

    def test_clamped_to_max_size(self):
        policy = LeasePolicy(target_seconds=10.0, max_size=16)
        policy.observe(0.001)
        assert policy.lease_size(1000) == 16

    def test_fairness_caps_at_queue_share(self):
        policy = LeasePolicy(target_seconds=1.0)
        policy.observe(0.01)  # wants 100 units
        assert policy.lease_size(10, workers=5) == 2
        assert policy.lease_size(10, workers=10) == 1

    def test_bad_observations_ignored(self):
        policy = LeasePolicy(target_seconds=1.0)
        policy.observe(float("nan"))
        policy.observe(-1.0)
        assert policy.observed_unit_seconds is None


class TestFixedSizing:
    def test_fixed_size_capped_by_queue_depth(self):
        policy = LeasePolicy(size=8)
        assert policy.lease_size(3) == 3
        assert policy.lease_size(100) == 8

    def test_empty_queue_leases_nothing(self):
        assert LeasePolicy(size=8).lease_size(0) == 0
        assert LeasePolicy().lease_size(0) == 0


class TestLocality:
    def test_locality_key_is_the_scenario(self, small_config):
        unit = WorkUnit(small_config, 0.4, 0)
        assert unit.locality_key == small_config.scenario_key()
        # Same scenario, different grid coordinates: one warm-cache bucket.
        assert WorkUnit(small_config, 1.2, 1).locality_key == unit.locality_key

    def test_chunks_never_mix_scenarios(self, small_config):
        base = replace(small_config, num_graphs=3)
        grid = ScenarioGrid.from_scenarios(base, topologies=("ring",))
        units = grid.units()
        chunks = LeasePolicy(size=4).chunks(units, workers=2)
        for chunk in chunks:
            assert len({u.locality_key for u in chunk}) == 1
        flattened = [u for chunk in chunks for u in chunk]
        assert flattened == units  # order preserved, nothing lost

    def test_fixed_chunk_sizes(self, small_config):
        units = ScenarioGrid.from_config(small_config).units()  # 4 units
        sizes = [len(c) for c in LeasePolicy(size=3).chunks(units)]
        assert sizes == [3, 1]

    def test_auto_chunks_target_four_per_worker(self, small_config):
        units = ScenarioGrid.from_config(
            replace(small_config, num_graphs=16)
        ).units()  # 32 units
        chunks = LeasePolicy().chunks(units, workers=2)
        assert max(len(c) for c in chunks) == 4  # ceil(32 / (2 * 4))

    def test_empty_units(self):
        assert LeasePolicy().chunks([]) == []


class _StubUnit:
    """Just enough WorkUnit surface for chunk/store plumbing tests."""

    def __init__(self, uid: str, fail: bool = False):
        self.uid = uid
        self.fail = fail
        self.granularity = 1.0
        self.rep = 0

    @property
    def unit_id(self):
        return self.uid

    @property
    def locality_key(self):
        return ("stub",)

    @property
    def scenario(self):
        return {"config": "stub", "network": "oneport",
                "topology": "clique", "policy": "append"}

    def run(self):
        from repro.experiments.harness import RepResult

        if self.fail:
            raise RuntimeError(f"boom in {self.uid}")
        return RepResult(granularity=1.0, rep=0,
                         faultfree_norm={"caft": 1.0},
                         metrics={"caft": {"norm_latency": 1.0}})


class TestChunkFailure:
    def test_run_chunk_keeps_completed_prefix(self):
        from repro.experiments.executors.process import _UnitFailure, _run_chunk

        out = _run_chunk([_StubUnit("a"), _StubUnit("b", fail=True),
                          _StubUnit("c")])
        assert len(out) == 2  # stops at the failure, 'c' never ran
        assert isinstance(out[1], _UnitFailure)
        assert isinstance(out[1].exc, RuntimeError)

    def test_pool_stores_completed_siblings_before_raising(self):
        # A chunk of [ok, ok, fail, ok]: the two completed results must
        # land in the store even though the chunk's third unit raises —
        # a --resume then only recomputes from the failure on.
        from repro.experiments import RunStore

        units = [_StubUnit("a"), _StubUnit("b"), _StubUnit("c", fail=True),
                 _StubUnit("d")]
        store = RunStore()
        executor = ProcessExecutor(2, clamp=False, lease=8)  # one chunk
        with pytest.raises(RuntimeError, match="boom in c"):
            executor.run(units, store)
        assert store.completed_ids() == {"a", "b"}


class TestLeaseThreading:
    def test_make_executor_threads_lease_to_process(self):
        ex = make_executor("process:2", clamp=False, lease=5)
        assert isinstance(ex, ProcessExecutor)
        assert ex.lease_policy.size == 5

    def test_make_executor_threads_lease_to_socket(self):
        ex = make_executor("socket:2", lease="auto")
        assert ex.lease_policy.adaptive

    def test_socket_default_targets_twice_heartbeat(self):
        from repro.experiments import SocketExecutor

        ex = SocketExecutor(heartbeat=0.5)
        assert ex.lease_policy.adaptive
        assert ex.lease_policy.target_seconds == pytest.approx(1.0)

    def test_process_lease_equivalence(self, small_config, tmp_path):
        from repro.experiments import run_campaign

        serial = run_campaign(small_config, executor="serial").rows()
        chunked = run_campaign(
            small_config,
            executor=ProcessExecutor(2, clamp=False, lease=3),
        ).rows()
        assert chunked == serial
