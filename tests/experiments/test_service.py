"""Persistent campaign-service integration tests.

Marked ``service`` (run alone with ``pytest -m service``): one
long-lived :class:`CampaignService` master accepting many campaign
submissions over the v4 wire protocol on a shared worker pool.  The
contract under test is the executor stack's, lifted to jobs: every
submitted job's stored rows must be bit-identical to a serial run of
the same config — across concurrent tenants, fair-share scheduling,
worker faults, cancellation, and a restart of the service itself.
"""

import socket
import time
from dataclasses import replace

import pytest

from repro.experiments import (
    Campaign,
    CampaignSpec,
    ExecutorSpec,
    open_store,
    run_campaign,
)
from repro.experiments.config import FIGURES
from repro.experiments.executors import (
    WORKER_EXIT_FAULT_INJECTED,
    sockets_available,
)
from repro.experiments.executors.socket import _LineConn
from repro.experiments.grid import WorkUnit
from repro.experiments.service import CampaignService, ServiceClient
from repro.experiments.store import result_to_dict
from repro.utils.errors import CampaignConfigError

import executor_conformance as ec

pytestmark = [
    pytest.mark.service,
    pytest.mark.skipif(
        not sockets_available(), reason="localhost sockets unavailable"
    ),
]

#: hard deadline for every service campaign in this module — like the
#: ``distributed`` tier, a wedged service fails loudly, never hangs
DEADLINE_S = 60.0


@pytest.fixture(scope="module")
def serial_rep_rows(pinned_config, tmp_path_factory):
    """Per-rep serial baseline rows for the pinned equivalence config."""
    directory = tmp_path_factory.mktemp("serial-baseline")
    run_campaign(pinned_config, executor="serial", store=directory)
    with open_store(directory) as store:
        return store.rep_rows()


class TestMultiTenantService:
    def test_two_concurrent_jobs_shared_pool_bit_identical(
        self, tmp_path, pinned_config, serial_rep_rows
    ):
        # One persistent master, two tenants, two store backends, one
        # shared worker pool — both jobs' rows must match serial.
        with CampaignService(tmp_path / "svc", spawn_workers=2) as service:
            address = service.start()
            client = ServiceClient(address)
            jsonl = client.submit(
                {"config": pinned_config.to_dict()}, tenant="alice"
            )
            columnar = client.submit(
                {"config": pinned_config.to_dict(),
                 "store": {"backend": "columnar"}},
                tenant="bob",
                priority=1,
            )
            assert jsonl["job_id"] != columnar["job_id"]
            for snap in (jsonl, columnar):
                final = client.wait(snap["job_id"], timeout=DEADLINE_S)
                assert final["state"] == "done"
                assert final["done"] == final["total"]
        with open_store(jsonl["store"]) as store:
            assert store.backend_name == "jsonl"
            assert store.rep_rows() == serial_rep_rows
        with open_store(columnar["store"]) as store:
            assert store.backend_name == "columnar"
            assert store.rep_rows() == serial_rep_rows

    def test_weighted_fair_share_grant_order(self, tmp_path):
        # alice (priority 0) submits first; bob (priority 1) second.
        # Weighted fair queuing must give bob ~2/3 of the grants while
        # alice keeps ~1/3 — neither tenant starves the other.  A
        # hand-rolled v1 worker (one unit per round-trip) observes the
        # exact grant sequence; jobs are distinguished by granularity.
        base = replace(
            FIGURES[1].with_graphs(4).with_network(topology="ring"),
            num_procs=6,
            task_range=(12, 18),
        )
        cfg_a = replace(base, granularities=(0.4,))
        cfg_b = replace(base, granularities=(1.2,))
        with CampaignService(tmp_path / "svc", spawn_workers=0) as service:
            address = service.start()
            client = ServiceClient(address)
            job_a = client.submit({"config": cfg_a.to_dict()},
                                  tenant="alice", priority=0)
            job_b = client.submit({"config": cfg_b.to_dict()},
                                  tenant="bob", priority=1)
            order = []
            lc = _LineConn(socket.create_connection(address, timeout=10.0))
            try:
                # no `proto` field -> the service speaks v1: single
                # `unit` messages, so every grant is observable
                lc.send({"type": "hello", "worker": "probe",
                         "heartbeat": 0.3})
                for _ in range(8):
                    message = lc.recv(timeout=30.0)
                    assert message["type"] == "unit"
                    unit = WorkUnit.from_dict(message["unit"])
                    order.append("A" if unit.granularity == 0.4 else "B")
                    lc.send({
                        "type": "result",
                        "unit_id": unit.unit_id,
                        "result": result_to_dict(unit.run()),
                    })
            finally:
                lc.close()
            # Virtual time: alice weight 1, bob weight 2 (1 + priority).
            # The deterministic WFQ sequence is A B B A B B, then only
            # alice's units remain.
            assert order == ["A", "B", "B", "A", "B", "B", "A", "A"]
            assert client.status(job_a["job_id"])["state"] == "done"
            assert client.status(job_b["job_id"])["state"] == "done"

    def test_priority_zero_tenant_cannot_starve_priority_one(
        self, tmp_path, pinned_config
    ):
        # The starvation direction the WFQ floor guards: a tenant
        # hammering priority-0 submissions before a priority-1 tenant
        # arrives must not monopolize the pool — the late tenant joins
        # at the current virtual-time floor and immediately gets the
        # larger share.
        base = replace(
            FIGURES[1].with_graphs(4).with_network(topology="ring"),
            num_procs=6,
            task_range=(12, 18),
        )
        cfg_a = replace(base, granularities=(0.4,))
        cfg_b = replace(base, granularities=(1.2,))
        with CampaignService(tmp_path / "svc", spawn_workers=0) as service:
            address = service.start()
            client = ServiceClient(address)
            for _ in range(2):
                client.submit({"config": cfg_a.to_dict()},
                              tenant="flood", priority=0)
            high = client.submit({"config": cfg_b.to_dict()},
                                 tenant="urgent", priority=1)
            grants_until_high = 0
            lc = _LineConn(socket.create_connection(address, timeout=10.0))
            try:
                lc.send({"type": "hello", "worker": "probe",
                         "heartbeat": 0.3})
                for _ in range(12):
                    message = lc.recv(timeout=30.0)
                    unit = WorkUnit.from_dict(message["unit"])
                    if unit.granularity == 1.2:
                        break
                    grants_until_high += 1
                    lc.send({
                        "type": "result",
                        "unit_id": unit.unit_id,
                        "result": result_to_dict(unit.run()),
                    })
                else:
                    pytest.fail(
                        "priority-1 tenant starved: no grant in 12 rounds"
                    )
            finally:
                lc.close()
            # The fresh tenant starts at the vtime floor, so its first
            # grant arrives within the very next scheduling rounds.
            assert grants_until_high <= 2
            assert client.status(high["job_id"])["state"] == "running"


class TestServiceLifecycle:
    def test_restart_resumes_incomplete_jobs(
        self, tmp_path, pinned_config, serial_rep_rows
    ):
        # A service stopped with a job still running leaves the job
        # `running` on disk; a fresh service on the same root must
        # resume it — same job id, no rerun of completed units.
        root = tmp_path / "svc"
        with CampaignService(root, spawn_workers=0) as service:
            address = service.start()
            snap = ServiceClient(address).submit(
                {"config": pinned_config.to_dict()}
            )
            assert snap["state"] == "running"
        with CampaignService(root, spawn_workers=2) as service:
            address = service.start()
            final = ServiceClient(address).wait(
                snap["job_id"], timeout=DEADLINE_S
            )
            assert final["state"] == "done"
        with open_store(snap["store"]) as store:
            assert store.rep_rows() == serial_rep_rows

    @pytest.mark.conformance
    def test_sigkill_restart_conformance_cell(
        self, tmp_path, pinned_config, serial_rep_rows
    ):
        # The service conformance cell: SIGKILL mid-flight with two
        # concurrent jobs (JSONL + columnar), restart, both resumed —
        # rows bit-identical to serial for both backends.
        jsonl_rows, columnar_rows = ec.run_service_cell(
            pinned_config, tmp_path / "cell"
        )
        assert jsonl_rows == serial_rep_rows
        assert columnar_rows == serial_rep_rows

    def test_cancel_is_terminal_and_survives_restart(
        self, tmp_path, pinned_config
    ):
        root = tmp_path / "svc"
        with CampaignService(root, spawn_workers=0) as service:
            address = service.start()
            client = ServiceClient(address)
            snap = client.submit({"config": pinned_config.to_dict()})
            cancelled = client.cancel(snap["job_id"])
            assert cancelled["state"] == "cancelled"
            # cancelling a terminal job is an idempotent no-op
            assert client.cancel(snap["job_id"])["state"] == "cancelled"
        with CampaignService(root, spawn_workers=0) as service:
            address = service.start()
            status = ServiceClient(address).status(snap["job_id"])
            assert status["state"] == "cancelled"

    def test_fault_exit_worker_never_respawned(
        self, tmp_path, pinned_config, serial_rep_rows
    ):
        # A worker exiting with the injected-fault code 3 (--max-units)
        # must not be respawned by the service loop; the survivor
        # finishes the job.
        with CampaignService(
            tmp_path / "svc", spawn_workers=[["--max-units", "1"], []]
        ) as service:
            service.start()
            client = ServiceClient(service.address)
            snap = client.submit({"config": pinned_config.to_dict()})
            final = client.wait(snap["job_id"], timeout=DEADLINE_S)
            assert final["state"] == "done"
            deadline = time.monotonic() + 10.0
            while (
                time.monotonic() < deadline
                and service._pool.procs[0].poll() is None
            ):
                time.sleep(0.05)
            assert (
                service._pool.procs[0].poll() == WORKER_EXIT_FAULT_INJECTED
            )
            assert service._pool.respawns == 0
        with open_store(snap["store"]) as store:
            assert store.rep_rows() == serial_rep_rows

    def test_crashed_worker_respawned(
        self, tmp_path, pinned_config, serial_rep_rows
    ):
        # A genuine crash (--die-after exits 1) is respawned — bounded
        # per slot per job — and the job still completes bit-identical.
        with CampaignService(
            tmp_path / "svc", spawn_workers=[["--die-after", "1"], []]
        ) as service:
            service.start()
            client = ServiceClient(service.address)
            snap = client.submit({"config": pinned_config.to_dict()})
            final = client.wait(snap["job_id"], timeout=DEADLINE_S)
            assert final["state"] == "done"
            assert service._pool.respawns >= 1
        with open_store(snap["store"]) as store:
            assert store.rep_rows() == serial_rep_rows


class TestClientSurface:
    def test_service_executor_spec_matches_serial(
        self, tmp_path, pinned_config, pinned_serial_rows
    ):
        # ExecutorSpec(kind="service"): the campaign runs remotely, the
        # results stream back into the *local* store.
        with CampaignService(tmp_path / "svc", spawn_workers=2) as service:
            host, port = service.start()
            spec = CampaignSpec(
                config=pinned_config,
                executor=ExecutorSpec(
                    kind="service",
                    address=f"{host}:{port}",
                    tenant="exec",
                    timeout=DEADLINE_S,
                ),
            )
            handle = Campaign(spec).run()
            assert handle.result().rows() == pinned_serial_rows

    def test_campaign_submit_handle(
        self, tmp_path, pinned_config, serial_rep_rows
    ):
        with CampaignService(tmp_path / "svc", spawn_workers=2) as service:
            address = service.start()
            handle = Campaign(
                CampaignSpec(config=pinned_config)
            ).submit(address, tenant="alice")
            final = handle.wait(timeout=DEADLINE_S)
            assert final["state"] == "done"
            with handle.open_store() as store:
                assert store.rep_rows() == serial_rep_rows

    def test_bad_submit_rejected_without_residue(self, tmp_path):
        with CampaignService(tmp_path / "svc", spawn_workers=0) as service:
            address = service.start()
            client = ServiceClient(address)
            with pytest.raises(CampaignConfigError):
                client.submit({"config": {"bogus_key": 1}})
            # a rejected submit leaves no job behind — in memory or on disk
            assert client.jobs() == []
            assert list((tmp_path / "svc" / "jobs").glob("job-*")) == []

    def test_unknown_job_id_carries_key(self, tmp_path):
        with CampaignService(tmp_path / "svc", spawn_workers=0) as service:
            address = service.start()
            with pytest.raises(CampaignConfigError) as excinfo:
                ServiceClient(address).status("job-999999")
            assert excinfo.value.key == "job_id"
