"""The declarative campaign API: spec validation, registries, facade.

The headline pins of the redesign live here too: every shipped figure
spec expands to exactly the grid the historical keyword path built, and
a tiny campaign run from a spec produces bit-identical stored rows to
the pre-redesign ``run_figure`` keyword path.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.api import (
    Campaign,
    CampaignHandle,
    CampaignSpec,
    ExecutorSpec,
    ProgressEvent,
    StoreSpec,
    apply_overrides,
    figure_spec,
    figure_spec_path,
    parse_override,
    shipped_spec_paths,
)
from repro.experiments.config import FIGURES, ExperimentConfig
from repro.experiments.executors import (
    ProcessExecutor,
    SerialExecutor,
    SocketExecutor,
)
from repro.experiments.figures import run_figure
from repro.experiments.grid import ScenarioGrid
from repro.experiments.harness import ALGORITHM_RUNNERS, FAULTFREE_RUNNERS
from repro.experiments.registry import (
    EXECUTORS,
    SCHEDULERS,
    STORES,
    register_executor,
    register_scheduler,
    register_store,
    scheduler_names,
)
from repro.experiments.store import RunStore
from repro.utils.errors import CampaignConfigError

TINY = {
    "graphs": 1,
    "config.granularities": [0.4, 1.2],
    "config.task_range": [14, 18],
}


def tiny_spec(**overrides) -> CampaignSpec:
    spec = apply_overrides(figure_spec(1), TINY)
    return replace(spec, **overrides) if overrides else spec


# --------------------------------------------------------------- registries


class TestRegistries:
    def test_builtin_names(self):
        assert {"caft", "caft-paper", "ftsa", "ftbar"} <= set(scheduler_names())
        assert EXECUTORS.names() == ("process", "serial", "service", "socket")
        assert {"jsonl", "memory"} <= set(STORES.names())

    def test_unknown_lookup_is_config_error_listing_registered(self):
        with pytest.raises(CampaignConfigError, match="registered: .*serial"):
            EXECUTORS.get("mapreduce")
        err = pytest.raises(CampaignConfigError, SCHEDULERS.get, "heft2")
        assert err.value.key == "scheduler"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_executor("serial", lambda **kw: None)

    def test_colon_in_name_rejected(self):
        with pytest.raises(ValueError, match="':'"):
            register_executor("sock:et", lambda **kw: None)

    def test_registered_scheduler_flows_into_runner_views(self):
        runner = ALGORITHM_RUNNERS["caft"]
        register_scheduler("caft-copy", runner)
        try:
            assert "caft-copy" in ALGORITHM_RUNNERS
            assert ALGORITHM_RUNNERS["caft-copy"] is runner
            # default fault-free form is the runner at eps 0
            assert "caft-copy" in FAULTFREE_RUNNERS
        finally:
            SCHEDULERS.remove("caft-copy")
        assert "caft-copy" not in ALGORITHM_RUNNERS

    def test_registered_scheduler_runs_in_a_campaign(self):
        register_scheduler("caft-bis", ALGORITHM_RUNNERS["caft"])
        try:
            spec = apply_overrides(
                tiny_spec(),
                {"config.algorithms": ["caft", "caft-bis"],
                 "config.granularities": [1.0]},
            )
            result = Campaign(spec).run().result()
            rows = result.rows()
            # the registered algorithm gets its own columns, identical to
            # the caft it wraps
            assert rows[0]["caft-bis_latency0"] == rows[0]["caft_latency0"]
        finally:
            SCHEDULERS.remove("caft-bis")

    def test_unknown_algorithm_in_config_rejected(self):
        with pytest.raises(CampaignConfigError, match="unknown scheduler"):
            apply_overrides(tiny_spec(), {"config.algorithms": ["caft", "xyz"]})

    def test_registered_store_backend_resolves(self):
        captured = {}

        def factory(directory=None):
            captured["directory"] = directory
            return RunStore(None)

        register_store("null", factory)
        try:
            spec = tiny_spec(store=StoreSpec(backend="null"))
            assert spec.store.build() is not None
            assert captured == {"directory": None}
        finally:
            STORES.remove("null")


# ------------------------------------------------------------ spec validity


class TestSpecValidation:
    def test_needs_figure_or_config(self):
        err = pytest.raises(CampaignConfigError, CampaignSpec)
        assert err.value.key == "figure"

    def test_unknown_figure(self):
        with pytest.raises(CampaignConfigError, match="no figure 9"):
            CampaignSpec(figure=9)

    @pytest.mark.parametrize(
        "kwargs, key",
        [
            ({"graphs": 0}, "graphs"),
            ({"graphs": "many"}, "graphs"),
            ({"seed": "abc"}, "seed"),
            ({"network": "tcp"}, "network"),
            ({"topology": "hypercube"}, "topology"),
            ({"topologies": ("ring", "moebius")}, "topologies"),
            ({"policy": "lifo"}, "policy"),
            ({"policies": ("insertion", "fifo")}, "policies"),
            ({"lease": "sometimes"}, "lease"),
            ({"version": 2}, "version"),
            ({"include_base": False}, "include_base"),
        ],
    )
    def test_bad_values_name_their_key(self, kwargs, key):
        err = pytest.raises(
            CampaignConfigError, CampaignSpec, figure=1, **kwargs
        )
        assert err.value.key == key
        assert key.split(".")[-1] in str(err.value)

    def test_cross_field_scenario_errors_are_config_errors(self):
        with pytest.raises(CampaignConfigError, match="routed-oneport"):
            CampaignSpec(figure=1, network="oneport", topology="ring")
        with pytest.raises(CampaignConfigError, match="insertion"):
            CampaignSpec(figure=1, topology="ring", policy="insertion")

    def test_executor_socket_only_fields(self):
        for field, value in (
            ("bind", "127.0.0.1:7077"),
            ("spawn_workers", 2),
            ("timeout", 60.0),
            ("speculate", "auto"),
            ("steal", "off"),
        ):
            err = pytest.raises(
                CampaignConfigError, ExecutorSpec, **{field: value}
            )
            assert err.value.key == f"executor.{field}"
            assert "socket" in str(err.value)

    def test_bad_speculate_and_steal_values_rejected(self):
        for field in ("speculate", "steal"):
            for bad in ("yes", "on", True, 1):
                err = pytest.raises(
                    CampaignConfigError,
                    ExecutorSpec,
                    kind="socket",
                    **{field: bad},
                )
                assert err.value.key == f"executor.{field}"
                assert "'auto'" in str(err.value)

    def test_executor_bad_bind(self):
        with pytest.raises(CampaignConfigError, match="HOST:PORT"):
            ExecutorSpec(kind="socket", bind="nocolon")

    def test_non_numeric_executor_fields_are_config_errors(self):
        # never a raw ValueError/traceback: the CLI only catches
        # CampaignConfigError
        for kwargs, key in (
            ({"workers": "abc"}, "executor.workers"),
            ({"workers": True}, "executor.workers"),
            ({"kind": "socket", "timeout": "soon"}, "executor.timeout"),
            ({"kind": "socket", "spawn_workers": "2"}, "executor.spawn_workers"),
        ):
            err = pytest.raises(CampaignConfigError, ExecutorSpec, **kwargs)
            assert err.value.key == key

    def test_out_of_range_socket_fields_rejected(self):
        for kwargs, key in (
            ({"kind": "socket", "spawn_workers": -2}, "executor.spawn_workers"),
            ({"kind": "socket", "spawn_workers": 0}, "executor.spawn_workers"),
            ({"kind": "socket", "timeout": 0.0}, "executor.timeout"),
            ({"kind": "socket", "timeout": -5}, "executor.timeout"),
        ):
            err = pytest.raises(CampaignConfigError, ExecutorSpec, **kwargs)
            assert err.value.key == key

    def test_non_boolean_fast_rejected(self):
        for key, value in (("fast", "no"), ("include_base", 1)):
            err = pytest.raises(
                CampaignConfigError, CampaignSpec, figure=1, **{key: value}
            )
            assert err.value.key == key

    def test_bad_figure_with_config_names_figure_not_config(self):
        err = pytest.raises(
            CampaignConfigError,
            CampaignSpec.from_dict,
            {"figure": 9, "config": {"num_procs": 5}},
        )
        assert err.value.key == "figure"

    def test_serial_rejects_parallel_worker_counts(self):
        err = pytest.raises(
            CampaignConfigError, ExecutorSpec, kind="serial", workers=8
        )
        assert err.value.key == "executor.workers"
        assert ExecutorSpec(kind="serial", workers=1).workers == 1

    def test_registered_executor_kind_receives_socket_style_options(self):
        """Custom kinds take bind/timeout/... as factory options — only
        the builtin serial/process kinds reject them."""
        seen = {}

        def factory(workers=None, lease=None, **options):
            seen.update(options, workers=workers)
            return SerialExecutor()

        register_executor("tls-socket", factory)
        try:
            spec = ExecutorSpec(
                kind="tls-socket", workers=3, bind="127.0.0.1:7077", timeout=5.0
            )
            spec.build()
            assert seen == {
                "workers": 3,
                "bind": "127.0.0.1:7077",
                "timeout": 5.0,
            }
        finally:
            EXECUTORS.remove("tls-socket")

    def test_store_backend_rules(self):
        assert StoreSpec().resolved_backend == "memory"
        assert StoreSpec(directory="x").resolved_backend == "jsonl"
        with pytest.raises(CampaignConfigError, match="store.directory"):
            StoreSpec(backend="jsonl")
        with pytest.raises(CampaignConfigError, match="memory"):
            StoreSpec(backend="memory", directory="x")

    def test_resume_needs_persistent_store(self):
        err = pytest.raises(
            CampaignConfigError, Campaign(tiny_spec()).resume
        )
        assert "persistent store" in str(err.value)
        assert err.value.key == "store.directory"


# ------------------------------------------------------- the offending key


class TestOverrides:
    def test_parse_override_values_are_json_when_possible(self):
        assert parse_override("graphs=3") == ("graphs", 3)
        assert parse_override("fast=false") == ("fast", False)
        assert parse_override("config.granularities=[0.2]") == (
            "config.granularities",
            [0.2],
        )
        assert parse_override("executor.kind=process") == (
            "executor.kind",
            "process",
        )
        assert parse_override("store.directory=null") == ("store.directory", None)

    def test_parse_override_requires_key_value(self):
        with pytest.raises(CampaignConfigError, match="KEY=VALUE"):
            parse_override("graphs")

    def test_apply_overrides_wins_and_validates(self):
        spec = tiny_spec()
        out = apply_overrides(spec, {"graphs": 7, "executor.kind": "process"})
        assert out.graphs == 7 and out.executor.kind == "process"
        with pytest.raises(CampaignConfigError, match="unknown key"):
            apply_overrides(spec, {"grapsh": 7})

    def test_straggler_knobs_override_by_dotted_key(self):
        # `--override executor.speculate=auto` routes through the
        # serialized form like any other spec key — with identical
        # validation, so the knobs stay socket-only.
        spec = tiny_spec()
        out = apply_overrides(
            spec,
            {"executor.kind": "socket", "executor.spawn_workers": 2,
             "executor.speculate": "auto", "executor.steal": "off"},
        )
        assert out.executor.speculate == "auto"
        assert out.executor.steal == "off"
        err = pytest.raises(
            CampaignConfigError,
            apply_overrides, spec, {"executor.speculate": "auto"},
        )
        assert err.value.key == "executor.speculate"
        err = pytest.raises(
            CampaignConfigError,
            apply_overrides, spec,
            {"executor.kind": "socket", "executor.speculate": "sometimes"},
        )
        assert err.value.key == "executor.speculate"

    def test_apply_none_resets_to_default(self):
        spec = tiny_spec(lease=4)
        assert apply_overrides(spec, {"lease": None}).lease is None

    def test_override_through_non_table_rejected(self):
        with pytest.raises(CampaignConfigError, match="not a table"):
            apply_overrides(tiny_spec(), {"graphs.deep": 1})


# ------------------------------------------------ shipped spec equivalence


class TestShippedSpecEquivalence:
    @pytest.mark.parametrize("number", sorted(FIGURES))
    def test_shipped_spec_matches_keyword_grid(self, number):
        """Every figure's shipped spec expands to exactly the grid the
        pre-redesign keyword path built."""
        assert figure_spec_path(number).exists()
        spec = figure_spec(number)
        assert spec.grid() == ScenarioGrid.from_figure(number)
        assert spec.config == FIGURES[number]

    def test_shipped_specs_cover_all_figures(self):
        names = {p.stem for p in shipped_spec_paths()}
        assert {f"figure{n}" for n in FIGURES} <= names

    def test_spec_rows_bit_identical_to_keyword_path(self, tmp_path):
        """The acceptance pin: a campaign run from the shipped spec file
        stores byte-identical rows to the historical keyword path."""
        keyword_store = tmp_path / "keyword"
        spec_store = tmp_path / "spec"
        # pre-redesign style: run_figure with keyword overrides
        keyword = run_figure(
            1,
            num_graphs=TINY["graphs"],
            store=str(keyword_store),
            executor="serial",
        )
        # redesign style: the shipped spec file, overridden and run
        spec = apply_overrides(
            figure_spec(1),
            {"graphs": TINY["graphs"], "store.directory": str(spec_store)},
        )
        handle = Campaign(spec).run()
        assert handle.result().rows() == keyword.rows()
        assert handle.result().rep_rows() == keyword.rep_rows()
        # byte-identical stored rows (same serial append order)
        assert (spec_store / "rows.jsonl").read_bytes() == (
            keyword_store / "rows.jsonl"
        ).read_bytes()

    def test_scenario_axes_match_from_scenarios(self):
        spec = tiny_spec(topologies=("ring",), policies=("insertion",))
        base = spec.base_config()
        assert spec.grid() == ScenarioGrid.from_scenarios(
            base, topologies=("ring",), policies=("insertion",)
        )


# ----------------------------------------------------------------- facade


class TestCampaignFacade:
    def test_run_returns_handle_with_events_and_result(self):
        events = []
        handle = Campaign(tiny_spec()).run(progress=events.append)
        assert isinstance(handle, CampaignHandle)
        assert handle.result().config.num_graphs == 1
        assert handle.events == events
        kinds = [e.kind for e in events]
        assert kinds[0] == "start" and kinds[-1] == "done"
        # one "unit" event per work unit of the grid
        assert kinds.count("unit") == tiny_spec().grid().total_units
        assert all(isinstance(e, ProgressEvent) for e in events)
        assert handle.elapsed > 0

    def test_executor_spec_builds_requested_kinds(self):
        assert isinstance(ExecutorSpec().build(), SerialExecutor)
        proc = ExecutorSpec(kind="process", workers=2).build(lease=3)
        assert isinstance(proc, ProcessExecutor)
        assert proc.lease_policy.size == 3
        sock = ExecutorSpec(
            kind="socket", bind="127.0.0.1:0", spawn_workers=2, timeout=9.0
        ).build()
        assert isinstance(sock, SocketExecutor)
        assert sock.timeout == 9.0
        # Straggler-mitigation defaults: stealing on, speculation off.
        assert sock.steal is True
        assert sock.speculation.enabled is False
        tuned = ExecutorSpec(
            kind="socket", bind="127.0.0.1:0", speculate="auto", steal="off"
        ).build()
        assert tuned.speculation.enabled is True
        assert tuned.steal is False

    def test_run_with_process_executor_matches_serial(self):
        spec = tiny_spec()
        serial = Campaign(spec).run().result()
        pooled = replace(spec, executor=ExecutorSpec(kind="process", workers=2))
        parallel = Campaign(pooled).run().result()
        assert serial.rows() == parallel.rows()

    def test_spec_to_json_resumes_against_its_own_store(self, tmp_path):
        """The acceptance pin: a spec written by to_json() resumes
        against a store created from the same spec."""
        store_dir = tmp_path / "store"
        spec = apply_overrides(
            tiny_spec(), {"store.directory": str(store_dir)}
        )
        first = Campaign(spec).run()
        assert len(first.result().reps) == spec.grid().total_units

        # ship the spec as a file, reload it, resume: nothing re-runs,
        # rows are identical
        path = tmp_path / "campaign.json"
        path.write_text(spec.to_json())
        resumed = Campaign.from_file(path).resume()
        unit_events = [e for e in resumed.events if e.kind == "unit"]
        assert unit_events == []  # every unit was already stored
        assert resumed.result().rows() == first.result().rows()

    def test_resume_finishes_a_partial_store(self, tmp_path):
        store_dir = tmp_path / "store"
        spec = apply_overrides(tiny_spec(), {"store.directory": str(store_dir)})
        grid = spec.grid()
        units = grid.units()
        # simulate a crash: record only the first unit, by hand
        with RunStore(store_dir) as store:
            store.ensure_manifest(grid)
            store.append(units[0], units[0].run())
        handle = Campaign(spec).resume()
        unit_events = [e for e in handle.events if e.kind == "unit"]
        assert len(unit_events) == len(units) - 1
        assert len(handle.result().reps) == len(units)

    def test_multi_scenario_results_and_result_guard(self):
        spec = tiny_spec(topologies=("ring",))
        handle = Campaign(spec).run()
        assert len(handle.results) == 2
        with pytest.raises(ValueError, match="2 scenario"):
            handle.result()
