"""Tests for campaign statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.stats import (
    dominates,
    geometric_mean_ratio,
    paired_mean_difference,
    summarize_series,
    win_rate,
)


class TestSummarize:
    def test_basic(self):
        s = summarize_series([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci95_half_width == pytest.approx(1.96 / math.sqrt(3))

    def test_ci_interval(self):
        s = summarize_series([5.0] * 10)
        assert s.std == 0.0
        assert s.ci95 == (5.0, 5.0)

    def test_nan_filtered(self):
        s = summarize_series([1.0, math.nan, 3.0])
        assert s.n == 2
        assert s.mean == pytest.approx(2.0)

    def test_empty(self):
        s = summarize_series([])
        assert s.n == 0 and math.isnan(s.mean)

    def test_single(self):
        s = summarize_series([4.0])
        assert s.n == 1 and s.mean == 4.0 and math.isinf(s.ci95_half_width)


class TestPaired:
    def test_mean_difference(self):
        mean, half = paired_mean_difference([3.0, 4.0], [1.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert half == 0.0  # constant difference

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            paired_mean_difference([1.0], [1.0, 2.0])

    def test_dominates_clear_case(self):
        a = [1.0, 1.1, 0.9, 1.05]
        b = [2.0, 2.1, 1.9, 2.05]
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_dominates_noisy_tie(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.5, 50)
        b = a + rng.normal(0.0, 0.01, 50)  # indistinguishable
        assert not dominates(list(a), list(b)) or not dominates(list(b), list(a))


class TestWinRate:
    def test_all_wins(self):
        assert win_rate([1, 1], [2, 2]) == 1.0

    def test_ties_count_half(self):
        assert win_rate([1, 2], [1, 3]) == pytest.approx(0.75)

    def test_empty(self):
        assert math.isnan(win_rate([], []))


class TestGeomMean:
    def test_symmetric(self):
        r = geometric_mean_ratio([1.0, 4.0], [2.0, 2.0])
        assert r == pytest.approx(1.0)  # sqrt(0.5 * 2)

    def test_speedup(self):
        assert geometric_mean_ratio([1.0], [2.0]) == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean_ratio([0.0], [1.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=40))
def test_mean_within_ci(values):
    """The sample mean is inside its own CI, and std is non-negative."""
    s = summarize_series(values)
    lo, hi = s.ci95
    assert lo <= s.mean <= hi
    assert s.std >= 0


# --------------------------------------------------------------------------
# rep-level helpers on RAGGED stores — scenarios with unequal completed
# rep counts, the natural state of an interrupted or in-flight campaign


def _row(
    config="figA",
    topology="clique",
    granularity=1.0,
    rep=0,
    algorithm="caft",
    norm_latency=1.0,
):
    """One scenario-tagged per-rep row in the ``rep_rows()`` schema."""
    return {
        "config": config,
        "network": "oneport",
        "topology": topology,
        "policy": "append",
        "granularity": granularity,
        "rep": rep,
        "algorithm": algorithm,
        "norm_latency": norm_latency,
    }


def _ragged_rows():
    """Scenario 'ring' finished 3 reps, scenario 'clique' only 1 —
    exactly what a store of a still-running multi-scenario campaign
    holds."""
    rows = []
    for rep in range(3):
        rows.append(_row(topology="ring", rep=rep, algorithm="caft",
                         norm_latency=1.0 + rep))
        rows.append(_row(topology="ring", rep=rep, algorithm="ftsa",
                         norm_latency=2.0 + rep))
    rows.append(_row(topology="clique", rep=0, algorithm="caft",
                     norm_latency=5.0))
    rows.append(_row(topology="clique", rep=0, algorithm="ftsa",
                     norm_latency=6.0))
    return rows


class TestRaggedRepSeries:
    def test_series_spans_all_scenarios_in_canonical_order(self):
        from repro.experiments.stats import rep_series

        series = rep_series(_ragged_rows(), "caft")
        # clique sorts before ring; within ring, reps ascend.
        assert series == [5.0, 1.0, 2.0, 3.0]

    def test_where_filter_isolates_the_ragged_scenario(self):
        from repro.experiments.stats import rep_series

        rows = _ragged_rows()
        assert len(rep_series(rows, "caft", where={"topology": "ring"})) == 3
        assert len(rep_series(rows, "caft", where={"topology": "clique"})) == 1

    def test_none_values_stay_as_nan_placeholders(self):
        from repro.experiments.stats import rep_series

        rows = _ragged_rows()
        rows[0]["norm_latency"] = None  # failed crash replay
        series = rep_series(rows, "caft", where={"topology": "ring"})
        assert len(series) == 3  # alignment with the instance grid kept
        assert math.isnan(series[0])


class TestRaggedCompareReps:
    def test_pairs_only_shared_instances(self):
        from repro.experiments.stats import compare_reps

        rows = _ragged_rows()
        # ftsa's ring rep 1 never completed: drop the row entirely.
        rows = [
            r for r in rows
            if not (r["algorithm"] == "ftsa" and r["topology"] == "ring"
                    and r["rep"] == 1)
        ]
        cmp = compare_reps(rows, "caft", "ftsa")
        assert cmp.n == 3  # ring reps 0, 2 + clique rep 0
        assert cmp.mean_diff == pytest.approx(-1.0)
        assert cmp.win_rate == 1.0

    def test_none_values_dropped_pairwise(self):
        from repro.experiments.stats import compare_reps

        rows = _ragged_rows()
        for r in rows:
            if (r["algorithm"] == "ftsa" and r["topology"] == "ring"
                    and r["rep"] == 2):
                r["norm_latency"] = None
        cmp = compare_reps(rows, "caft", "ftsa")
        assert cmp.n == 3  # the None instance vanishes from both sides

    def test_empty_intersection_is_nan_not_crash(self):
        from repro.experiments.stats import compare_reps

        rows = [_row(algorithm="caft", rep=0), _row(algorithm="ftsa", rep=1)]
        cmp = compare_reps(rows, "caft", "ftsa")
        assert cmp.n == 0
        assert math.isnan(cmp.mean_diff)
        assert not cmp.significant

    def test_ragged_store_end_to_end(self):
        """Through a real RunStore: two scenarios, unequal rep counts."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.grid import WorkUnit
        from repro.experiments.harness import RepResult
        from repro.experiments.stats import compare_reps, rep_series
        from repro.experiments.store import RunStore

        def result(g, rep, offset):
            return RepResult(
                granularity=g,
                rep=rep,
                faultfree_norm={"caft": 1.0, "ftsa": 1.0},
                metrics={
                    "caft": {"norm_latency": 1.0 + rep + offset},
                    "ftsa": {"norm_latency": 2.0 + rep + offset},
                },
            )

        def config(topology):
            return ExperimentConfig(
                name="ragged",
                granularities=(1.0,),
                num_procs=4,
                epsilon=1,
                crashes=1,
                num_graphs=3,
                model="routed-oneport" if topology else "oneport",
                topology=topology,
            )

        store = RunStore()
        ring, clique = config("ring"), config(None)
        for rep in range(3):  # ring: fully completed
            store.append(WorkUnit(ring, 1.0, rep), result(1.0, rep, 0.0))
        for rep in range(1):  # clique: campaign interrupted after 1 rep
            store.append(WorkUnit(clique, 1.0, rep), result(1.0, rep, 0.5))
        rows = store.rep_rows()

        assert len(rep_series(rows, "caft", where={"topology": "ring"})) == 3
        assert len(rep_series(rows, "caft", where={"topology": "clique"})) == 1
        cmp = compare_reps(rows, "caft", "ftsa")
        assert cmp.n == 4  # every completed instance pairs across algos
        assert cmp.mean_diff == pytest.approx(-1.0)
        assert cmp.significant
