"""Tests for campaign statistics helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.stats import (
    dominates,
    geometric_mean_ratio,
    paired_mean_difference,
    summarize_series,
    win_rate,
)


class TestSummarize:
    def test_basic(self):
        s = summarize_series([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci95_half_width == pytest.approx(1.96 / math.sqrt(3))

    def test_ci_interval(self):
        s = summarize_series([5.0] * 10)
        assert s.std == 0.0
        assert s.ci95 == (5.0, 5.0)

    def test_nan_filtered(self):
        s = summarize_series([1.0, math.nan, 3.0])
        assert s.n == 2
        assert s.mean == pytest.approx(2.0)

    def test_empty(self):
        s = summarize_series([])
        assert s.n == 0 and math.isnan(s.mean)

    def test_single(self):
        s = summarize_series([4.0])
        assert s.n == 1 and s.mean == 4.0 and math.isinf(s.ci95_half_width)


class TestPaired:
    def test_mean_difference(self):
        mean, half = paired_mean_difference([3.0, 4.0], [1.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert half == 0.0  # constant difference

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            paired_mean_difference([1.0], [1.0, 2.0])

    def test_dominates_clear_case(self):
        a = [1.0, 1.1, 0.9, 1.05]
        b = [2.0, 2.1, 1.9, 2.05]
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_dominates_noisy_tie(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.5, 50)
        b = a + rng.normal(0.0, 0.01, 50)  # indistinguishable
        assert not dominates(list(a), list(b)) or not dominates(list(b), list(a))


class TestWinRate:
    def test_all_wins(self):
        assert win_rate([1, 1], [2, 2]) == 1.0

    def test_ties_count_half(self):
        assert win_rate([1, 2], [1, 3]) == pytest.approx(0.75)

    def test_empty(self):
        assert math.isnan(win_rate([], []))


class TestGeomMean:
    def test_symmetric(self):
        r = geometric_mean_ratio([1.0, 4.0], [2.0, 2.0])
        assert r == pytest.approx(1.0)  # sqrt(0.5 * 2)

    def test_speedup(self):
        assert geometric_mean_ratio([1.0], [2.0]) == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean_ratio([0.0], [1.0])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=40))
def test_mean_within_ci(values):
    """The sample mean is inside its own CI, and std is non-negative."""
    s = summarize_series(values)
    lo, hi = s.ci95
    assert lo <= s.mean <= hi
    assert s.std >= 0
