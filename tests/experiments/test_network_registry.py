"""The network/topology registry behind campaign scenario sweeps.

``ExperimentConfig.with_network`` opens the §7 axis to the figure
pipeline: routed sparse topologies (per-link delays drawn like the
clique path's platform) and the insertion-policy ablation, all through
the same deterministic ``(config, granularity, rep)`` work units — so
parallel campaigns stay bit-identical to serial ones.
"""

import pytest

from repro.comm.oneport import OnePortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.experiments.config import FIGURES, ExperimentConfig
from repro.experiments.harness import (
    campaign_network,
    generate_instance,
    generate_topology,
    run_campaign,
    run_rep,
)


def _tiny(config: ExperimentConfig) -> ExperimentConfig:
    from dataclasses import replace

    return replace(config, task_range=(8, 10), num_procs=6, epsilon=1, crashes=1,
                   num_graphs=2, granularities=(1.0,))


class TestWithNetwork:
    def test_topology_implies_routed_model(self):
        cfg = FIGURES[1].with_network(topology="torus")
        assert cfg.model == "routed-oneport"
        assert cfg.topology == "torus"

    def test_routed_model_defaults_to_ring(self):
        cfg = FIGURES[1].with_network(model="routed-oneport")
        assert cfg.topology == "ring"

    def test_routed_model_keeps_configured_topology(self):
        cfg = FIGURES[1].with_network(topology="torus")
        again = cfg.with_network(model="routed-oneport", policy="append")
        assert again.topology == "torus"

    def test_policy_only_keeps_model(self):
        cfg = FIGURES[1].with_network(policy="insertion")
        assert cfg.model == "oneport"
        assert cfg.port_policy == "insertion"

    def test_noop_returns_self(self):
        assert FIGURES[1].with_network() is FIGURES[1]

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError, match="routed-oneport"):
            FIGURES[1].with_network(model="macro-dataflow", topology="ring")
        with pytest.raises(ValueError, match="port_policy"):
            FIGURES[1].with_network(model="macro-dataflow", policy="insertion")


class TestRoutedCampaign:
    def test_topology_is_deterministic_and_randomized(self):
        cfg = _tiny(FIGURES[1].with_network(topology="ring"))
        a = generate_topology(cfg, 1.0, 0)
        b = generate_topology(cfg, 1.0, 0)
        other = generate_topology(cfg, 1.0, 1)
        assert a.links() == b.links()
        delays_a = [a.link_delay(x, y) for x, y in a.links()]
        assert delays_a == [b.link_delay(x, y) for x, y in b.links()]
        # per-link delays drawn from delay_range, different across reps
        assert all(0.5 <= d <= 1.0 for d in delays_a)
        assert delays_a != [other.link_delay(x, y) for x, y in other.links()]

    def test_instance_platform_matches_topology(self):
        cfg = _tiny(FIGURES[1].with_network(topology="star"))
        topo = generate_topology(cfg, 1.0, 0)
        inst = generate_instance(cfg, 1.0, 0, topology=topo)
        assert inst.platform.delay(1, 2) == pytest.approx(
            topo.effective_delay_matrix()[1, 2]
        )
        net = campaign_network(cfg, inst, topo)
        assert isinstance(net, RoutedOnePortNetwork)
        assert net.topology is topo

    def test_insertion_campaign_network(self):
        cfg = _tiny(FIGURES[1].with_network(policy="insertion"))
        inst = generate_instance(cfg, 1.0, 0)
        net = campaign_network(cfg, inst, None)
        assert isinstance(net, OnePortNetwork)
        assert net.policy == "insertion"

    def test_clique_campaign_network_stays_a_name(self):
        cfg = _tiny(FIGURES[1])
        inst = generate_instance(cfg, 1.0, 0)
        assert campaign_network(cfg, inst, None) == "oneport"

    def test_parallel_equals_serial_on_routed_campaign(self):
        cfg = _tiny(FIGURES[1].with_network(topology="ring"))
        serial = run_campaign(cfg)
        parallel = run_campaign(cfg, workers=2)
        assert serial.rows() == parallel.rows()

    def test_rep_is_pure_function_of_labels(self):
        cfg = _tiny(FIGURES[1].with_network(topology="torus"))
        assert run_rep(cfg, 1.0, 0) == run_rep(cfg, 1.0, 0)
