"""Tests for the append-only campaign results store."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import ScenarioGrid, WorkUnit
from repro.experiments.harness import RepResult
from repro.experiments.store import (
    RunStore,
    StoreError,
    result_from_dict,
    result_to_dict,
)


@pytest.fixture(scope="module")
def cfg() -> ExperimentConfig:
    return ExperimentConfig(
        name="store-test",
        granularities=(0.5, 1.5),
        num_procs=4,
        epsilon=1,
        crashes=1,
        num_graphs=2,
        task_range=(8, 10),
    )


def fake_result(granularity: float, rep: int) -> RepResult:
    """A synthetic rep result with awkward float values."""
    return RepResult(
        granularity=granularity,
        rep=rep,
        faultfree_norm={"caft": 1.0 + rep * 0.1234567890123456},
        metrics={
            "caft": {
                "norm_latency": 1.1 / 3.0 * (rep + 1),
                "norm_upper": 2.0,
                "overhead_0crash": 0.1,
                "messages": 17.0,
                "norm_crash": None if rep else 1.5,
                "overhead_crash": None if rep else 3.3,
            }
        },
    )


class TestResultSerialization:
    def test_exact_float_round_trip(self):
        result = fake_result(0.5, 1)
        data = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(data, 0.5, 1) == result


class TestInMemoryStore:
    def test_append_and_read(self, cfg):
        store = RunStore()
        unit = WorkUnit(cfg, 0.5, 0)
        assert store.append(unit, fake_result(0.5, 0))
        assert unit.unit_id in store
        assert len(store) == 1
        assert store.result(unit.unit_id).rep == 0

    def test_append_is_idempotent(self, cfg):
        store = RunStore()
        unit = WorkUnit(cfg, 0.5, 0)
        first = fake_result(0.5, 0)
        assert store.append(unit, first)
        assert not store.append(unit, fake_result(0.5, 1))  # dedup keeps first
        assert store.result(unit.unit_id) == first

    def test_manifest_unavailable(self):
        with pytest.raises(StoreError, match="in-memory"):
            RunStore().read_manifest_grid()


class TestDiskStore:
    def test_rows_persist_and_reload(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        for g in cfg.granularities:
            for rep in range(cfg.num_graphs):
                store.append(WorkUnit(cfg, g, rep), fake_result(g, rep))
        store.close()

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 4
        for g in cfg.granularities:
            for rep in range(cfg.num_graphs):
                unit = WorkUnit(cfg, g, rep)
                assert reloaded.result(unit.unit_id) == fake_result(g, rep)

    def test_append_only_on_disk(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        before = (tmp_path / "s" / "rows.jsonl").read_bytes()
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        after = (tmp_path / "s" / "rows.jsonl").read_bytes()
        assert after.startswith(before)

    def test_truncated_final_line_tolerated(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        # Simulate a kill mid-append: chop the last line in half.
        data = path.read_bytes()
        chopped = data[: len(data) - 40]
        path.write_bytes(chopped)

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 1  # the partial row reruns, the full one stays
        assert WorkUnit(cfg, 0.5, 0).unit_id in reloaded
        # A read-only load must not touch the file: a monitoring process
        # peeking at a live store must never race the writer's appends.
        assert path.read_bytes() == chopped

    def test_append_after_truncated_reload(self, cfg, tmp_path):
        # The resume path proper: kill mid-append, reload, append the
        # rerun unit, reload again.  The partial bytes must not glue
        # onto the rerun's row.
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])  # kill mid-append

        resumed = RunStore(tmp_path / "s")
        assert len(resumed) == 1
        resumed.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        resumed.append(WorkUnit(cfg, 1.5, 0), fake_result(1.5, 0))
        resumed.close()

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 3
        assert reloaded.result(WorkUnit(cfg, 0.5, 1).unit_id) == fake_result(
            0.5, 1
        )

    def test_append_after_missing_trailing_newline(self, cfg, tmp_path):
        # The kill can also land after a full record but before its
        # newline reaches disk; the next append must not glue onto it.
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        data = path.read_bytes()
        assert data.endswith(b"\n")
        path.write_bytes(data[:-1])

        resumed = RunStore(tmp_path / "s")
        assert len(resumed) == 1  # the record itself is intact
        resumed.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        resumed.close()

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 2

    def test_mid_file_corruption_raises(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        lines = path.read_bytes().split(b"\n")
        lines[0] = lines[0][:20]  # corrupt a NON-trailing row
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(StoreError, match="corrupt row"):
            RunStore(tmp_path / "s")

    def test_manifest_round_trip(self, cfg, tmp_path):
        grid = ScenarioGrid.from_config(cfg)
        store = RunStore(tmp_path / "s")
        store.write_manifest(grid)
        assert RunStore(tmp_path / "s").read_manifest_grid() == grid

    def test_manifest_mismatch_rejected(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.ensure_manifest(ScenarioGrid.from_config(cfg))
        other = ScenarioGrid.from_config(cfg.with_graphs(5))
        with pytest.raises(StoreError, match="different campaign"):
            store.ensure_manifest(other)

    def test_ensure_manifest_accepts_same_grid(self, cfg, tmp_path):
        grid = ScenarioGrid.from_config(cfg)
        store = RunStore(tmp_path / "s")
        store.ensure_manifest(grid)
        store.ensure_manifest(grid)  # second call is a no-op


class TestCorruptionMatrix:
    def test_every_truncation_point_of_the_last_record(self, cfg, tmp_path):
        """Chop rows.jsonl at *every* byte boundary of the final record and
        assert load + repair + resume never loses a durable row, never
        duplicates one, and never touches the intact prefix.

        This is the systematic version of the spot-check truncation
        tests above: a kill can land after any byte of an append, so the
        invariant must hold for all of them, not just one sample.
        """
        units = [WorkUnit(cfg, 0.5, 0), WorkUnit(cfg, 0.5, 1)]
        results = {u.unit_id: fake_result(u.granularity, u.rep) for u in units}
        reference = RunStore(tmp_path / "ref")
        for u in units:
            reference.append(u, results[u.unit_id])
        reference.close()
        data = (tmp_path / "ref" / "rows.jsonl").read_bytes()
        first_end = data.index(b"\n") + 1  # first record stays intact

        for cut in range(first_end, len(data) + 1):
            directory = tmp_path / f"cut{cut}"
            directory.mkdir()
            path = directory / "rows.jsonl"
            path.write_bytes(data[:cut])

            store = RunStore(directory)
            # The durably-written first record survives every cut; the
            # second only once its newline hit the disk.
            assert units[0].unit_id in store, f"cut={cut} lost row 1"
            loaded = len(store)
            assert loaded in (1, 2), f"cut={cut} loaded {loaded} rows"
            # Resume: rerun whatever is missing, and replay *everything*
            # once more (duplicate delivery) — idempotency must hold.
            for u in units:
                store.append(u, results[u.unit_id])
            store.close()

            final = RunStore(directory)
            assert len(final) == 2, f"cut={cut} ended with {len(final)} rows"
            for u in units:
                assert final.result(u.unit_id) == results[u.unit_id], (
                    f"cut={cut} corrupted {u.unit_id}"
                )
            # On-disk rows are unique per unit — no duplicates ever land.
            lines = [
                json.loads(line)
                for line in path.read_bytes().split(b"\n")
                if line.strip()
            ]
            ids = [record["unit_id"] for record in lines]
            assert sorted(ids) == sorted(results), f"cut={cut} wrote {ids}"
            # The repaired file still starts with the intact first record.
            assert path.read_bytes().startswith(data[:first_end]), (
                f"cut={cut} rewrote the intact prefix"
            )
            final.close()


class TestDedupStats:
    def test_live_duplicate_appends_counted(self, cfg):
        store = RunStore()
        unit = WorkUnit(cfg, 0.5, 0)
        store.append(unit, fake_result(0.5, 0))
        store.append(unit, fake_result(0.5, 0))
        store.append(unit, fake_result(0.5, 0))
        assert store.dedup_stats() == {
            "duplicate_appends": 2,
            "replayed_rows": 0,
            "by_attempt": {"primary": 2},
        }

    def test_duplicates_attributed_per_attempt(self, cfg):
        # Each losing delivery lands under the attempt tag that raced:
        # the winner's tag is never counted (it was stored, not
        # swallowed), whatever mechanism it came from.
        store = RunStore()
        a, b = WorkUnit(cfg, 0.5, 0), WorkUnit(cfg, 0.5, 1)
        assert store.append(a, fake_result(0.5, 0), attempt="primary")
        assert not store.append(a, fake_result(0.5, 0), attempt="speculative")
        assert not store.append(a, fake_result(0.5, 0), attempt="stale")
        assert store.append(b, fake_result(0.5, 1), attempt="stolen")
        assert not store.append(b, fake_result(0.5, 1), attempt="stale")
        assert store.dedup_stats() == {
            "duplicate_appends": 3,
            "replayed_rows": 0,
            "by_attempt": {"speculative": 1, "stale": 2},
        }

    def test_live_vs_replayed_counts_stay_separate(self, cfg, tmp_path):
        # A speculative loser swallowed live is a duplicate_append (with
        # its attempt tag); a duplicate row discovered while loading the
        # file is a replayed_row — a fresh process must not inherit the
        # dead process's live counters, only what the bytes show.
        store = RunStore(tmp_path / "s")
        unit = WorkUnit(cfg, 0.5, 0)
        store.append(unit, fake_result(0.5, 0))
        assert not store.append(unit, fake_result(0.5, 0),
                                attempt="speculative")
        store.close()
        assert store.dedup_stats()["by_attempt"] == {"speculative": 1}

        path = tmp_path / "s" / "rows.jsonl"
        path.write_bytes(path.read_bytes() * 2)  # a replayed append on disk
        reloaded = RunStore(tmp_path / "s")
        assert reloaded.dedup_stats() == {
            "duplicate_appends": 0,
            "replayed_rows": 1,
        }

    def test_replayed_rows_counted_at_load(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        unit = WorkUnit(cfg, 0.5, 0)
        store.append(unit, fake_result(0.5, 0))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        path.write_bytes(path.read_bytes() * 2)  # a replayed append on disk

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 1
        assert reloaded.dedup_stats() == {
            "duplicate_appends": 0,
            "replayed_rows": 1,
        }

    def test_clean_store_reports_zero(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.close()
        assert RunStore(tmp_path / "s").dedup_stats() == {
            "duplicate_appends": 0,
            "replayed_rows": 0,
        }


class TestRepRows:
    def test_rep_rows_are_tagged_and_sorted(self, cfg, tmp_path):
        store = RunStore()
        # Append deliberately out of canonical order.
        for g, rep in ((1.5, 1), (0.5, 0), (1.5, 0), (0.5, 1)):
            store.append(WorkUnit(cfg, g, rep), fake_result(g, rep))
        rows = store.rep_rows()
        assert len(rows) == 4  # one algorithm in the fake results
        assert [(r["granularity"], r["rep"]) for r in rows] == [
            (0.5, 0), (0.5, 1), (1.5, 0), (1.5, 1),
        ]
        assert rows[0]["network"] == "oneport"
        assert rows[0]["topology"] == "clique"
        assert rows[0]["policy"] == "append"
        assert rows[0]["algorithm"] == "caft"
        assert rows[0]["norm_crash"] == 1.5
        assert rows[1]["norm_crash"] is None
