"""Tests for the append-only campaign results store."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import ScenarioGrid, WorkUnit
from repro.experiments.harness import RepResult
from repro.experiments.store import (
    RunStore,
    StoreError,
    result_from_dict,
    result_to_dict,
)


@pytest.fixture(scope="module")
def cfg() -> ExperimentConfig:
    return ExperimentConfig(
        name="store-test",
        granularities=(0.5, 1.5),
        num_procs=4,
        epsilon=1,
        crashes=1,
        num_graphs=2,
        task_range=(8, 10),
    )


def fake_result(granularity: float, rep: int) -> RepResult:
    """A synthetic rep result with awkward float values."""
    return RepResult(
        granularity=granularity,
        rep=rep,
        faultfree_norm={"caft": 1.0 + rep * 0.1234567890123456},
        metrics={
            "caft": {
                "norm_latency": 1.1 / 3.0 * (rep + 1),
                "norm_upper": 2.0,
                "overhead_0crash": 0.1,
                "messages": 17.0,
                "norm_crash": None if rep else 1.5,
                "overhead_crash": None if rep else 3.3,
            }
        },
    )


class TestResultSerialization:
    def test_exact_float_round_trip(self):
        result = fake_result(0.5, 1)
        data = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(data, 0.5, 1) == result


class TestInMemoryStore:
    def test_append_and_read(self, cfg):
        store = RunStore()
        unit = WorkUnit(cfg, 0.5, 0)
        assert store.append(unit, fake_result(0.5, 0))
        assert unit.unit_id in store
        assert len(store) == 1
        assert store.result(unit.unit_id).rep == 0

    def test_append_is_idempotent(self, cfg):
        store = RunStore()
        unit = WorkUnit(cfg, 0.5, 0)
        first = fake_result(0.5, 0)
        assert store.append(unit, first)
        assert not store.append(unit, fake_result(0.5, 1))  # dedup keeps first
        assert store.result(unit.unit_id) == first

    def test_manifest_unavailable(self):
        with pytest.raises(StoreError, match="in-memory"):
            RunStore().read_manifest_grid()


class TestDiskStore:
    def test_rows_persist_and_reload(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        for g in cfg.granularities:
            for rep in range(cfg.num_graphs):
                store.append(WorkUnit(cfg, g, rep), fake_result(g, rep))
        store.close()

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 4
        for g in cfg.granularities:
            for rep in range(cfg.num_graphs):
                unit = WorkUnit(cfg, g, rep)
                assert reloaded.result(unit.unit_id) == fake_result(g, rep)

    def test_append_only_on_disk(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        before = (tmp_path / "s" / "rows.jsonl").read_bytes()
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        after = (tmp_path / "s" / "rows.jsonl").read_bytes()
        assert after.startswith(before)

    def test_truncated_final_line_tolerated(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        # Simulate a kill mid-append: chop the last line in half.
        data = path.read_bytes()
        chopped = data[: len(data) - 40]
        path.write_bytes(chopped)

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 1  # the partial row reruns, the full one stays
        assert WorkUnit(cfg, 0.5, 0).unit_id in reloaded
        # A read-only load must not touch the file: a monitoring process
        # peeking at a live store must never race the writer's appends.
        assert path.read_bytes() == chopped

    def test_append_after_truncated_reload(self, cfg, tmp_path):
        # The resume path proper: kill mid-append, reload, append the
        # rerun unit, reload again.  The partial bytes must not glue
        # onto the rerun's row.
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])  # kill mid-append

        resumed = RunStore(tmp_path / "s")
        assert len(resumed) == 1
        resumed.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        resumed.append(WorkUnit(cfg, 1.5, 0), fake_result(1.5, 0))
        resumed.close()

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 3
        assert reloaded.result(WorkUnit(cfg, 0.5, 1).unit_id) == fake_result(
            0.5, 1
        )

    def test_append_after_missing_trailing_newline(self, cfg, tmp_path):
        # The kill can also land after a full record but before its
        # newline reaches disk; the next append must not glue onto it.
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        data = path.read_bytes()
        assert data.endswith(b"\n")
        path.write_bytes(data[:-1])

        resumed = RunStore(tmp_path / "s")
        assert len(resumed) == 1  # the record itself is intact
        resumed.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        resumed.close()

        reloaded = RunStore(tmp_path / "s")
        assert len(reloaded) == 2

    def test_mid_file_corruption_raises(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(WorkUnit(cfg, 0.5, 0), fake_result(0.5, 0))
        store.append(WorkUnit(cfg, 0.5, 1), fake_result(0.5, 1))
        store.close()
        path = tmp_path / "s" / "rows.jsonl"
        lines = path.read_bytes().split(b"\n")
        lines[0] = lines[0][:20]  # corrupt a NON-trailing row
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(StoreError, match="corrupt row"):
            RunStore(tmp_path / "s")

    def test_manifest_round_trip(self, cfg, tmp_path):
        grid = ScenarioGrid.from_config(cfg)
        store = RunStore(tmp_path / "s")
        store.write_manifest(grid)
        assert RunStore(tmp_path / "s").read_manifest_grid() == grid

    def test_manifest_mismatch_rejected(self, cfg, tmp_path):
        store = RunStore(tmp_path / "s")
        store.ensure_manifest(ScenarioGrid.from_config(cfg))
        other = ScenarioGrid.from_config(cfg.with_graphs(5))
        with pytest.raises(StoreError, match="different campaign"):
            store.ensure_manifest(other)

    def test_ensure_manifest_accepts_same_grid(self, cfg, tmp_path):
        grid = ScenarioGrid.from_config(cfg)
        store = RunStore(tmp_path / "s")
        store.ensure_manifest(grid)
        store.ensure_manifest(grid)  # second call is a no-op


class TestRepRows:
    def test_rep_rows_are_tagged_and_sorted(self, cfg, tmp_path):
        store = RunStore()
        # Append deliberately out of canonical order.
        for g, rep in ((1.5, 1), (0.5, 0), (1.5, 0), (0.5, 1)):
            store.append(WorkUnit(cfg, g, rep), fake_result(g, rep))
        rows = store.rep_rows()
        assert len(rows) == 4  # one algorithm in the fake results
        assert [(r["granularity"], r["rep"]) for r in rows] == [
            (0.5, 0), (0.5, 1), (1.5, 0), (1.5, 1),
        ]
        assert rows[0]["network"] == "oneport"
        assert rows[0]["topology"] == "clique"
        assert rows[0]["policy"] == "append"
        assert rows[0]["algorithm"] == "caft"
        assert rows[0]["norm_crash"] == 1.5
        assert rows[1]["norm_crash"] is None
