"""Executor-equivalence and resume tests (the pinned determinism contract).

One pinned config (figure 1 small + routed ring, see ``conftest.py``)
must produce bit-identical campaign rows from every executor and across
any interrupt/resume split — including a real ``SIGKILL`` mid-campaign.
The socket executor's side of the same contract lives in
``test_socket_executor.py`` (marked ``distributed``).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import (
    CampaignResult,
    ProcessExecutor,
    RunStore,
    ScenarioGrid,
    SerialExecutor,
    SocketExecutor,
    StoreError,
    make_executor,
    run_campaign,
    run_grid,
)


class TestMakeExecutor:
    def test_default_is_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(None, workers=1), SerialExecutor)

    def test_workers_pick_process(self):
        ex = make_executor(None, workers=2, clamp=False)
        assert isinstance(ex, ProcessExecutor) and ex.workers == 2

    def test_spec_strings(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert make_executor("process:3", clamp=False).workers == 3
        sock = make_executor("socket:2")
        assert isinstance(sock, SocketExecutor)
        assert len(sock._worker_specs) == 2

    def test_instance_passthrough(self):
        ex = SerialExecutor()
        assert make_executor(ex) is ex

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("mapreduce")


class TestExecutorEquivalence:
    def test_process_matches_serial(self, pinned_config, pinned_serial_rows):
        parallel = run_campaign(
            pinned_config, executor=ProcessExecutor(2, clamp=False)
        )
        assert parallel.rows() == pinned_serial_rows

    def test_store_round_trip_matches(self, pinned_config, pinned_serial_rows,
                                      tmp_path):
        # Rows that went through JSONL on disk and back must stay identical.
        run_campaign(pinned_config, store=tmp_path / "s")
        reloaded = CampaignResult.from_store(RunStore(tmp_path / "s"))
        assert reloaded.config == pinned_config
        assert reloaded.rows() == pinned_serial_rows

    def test_progress_covers_all_units(self, pinned_config):
        messages = []
        run_campaign(pinned_config, progress=messages.append)
        assert len(messages) == 4  # 2 granularities x 2 reps


class TestResume:
    def test_partial_store_resumes_to_identical_rows(
        self, pinned_config, pinned_serial_rows, tmp_path
    ):
        grid = ScenarioGrid.from_config(pinned_config)
        units = grid.units()
        store = RunStore(tmp_path / "s")
        store.ensure_manifest(grid)
        # Simulate an interrupted campaign: only the first unit completed.
        SerialExecutor().run(units[:1], store)
        store.close()

        resumed = run_campaign(
            pinned_config, store=tmp_path / "s", resume=True
        )
        assert resumed.rows() == pinned_serial_rows

    def test_resume_does_not_rerun_completed_units(
        self, pinned_config, tmp_path
    ):
        grid = ScenarioGrid.from_config(pinned_config)
        store = RunStore(tmp_path / "s")
        store.ensure_manifest(grid)
        SerialExecutor().run(grid.units()[:2], store)
        store.close()
        before = (tmp_path / "s" / "rows.jsonl").read_bytes()

        run_campaign(pinned_config, store=tmp_path / "s", resume=True)
        after = (tmp_path / "s" / "rows.jsonl").read_bytes()
        assert after.startswith(before)  # append-only: old rows untouched
        assert after.count(b"\n") == 4

    def test_nonempty_store_without_resume_is_an_error(
        self, pinned_config, tmp_path
    ):
        run_campaign(pinned_config, store=tmp_path / "s")
        with pytest.raises(StoreError, match="resume"):
            run_campaign(pinned_config, store=tmp_path / "s")

    def test_resume_rejects_foreign_store(self, pinned_config, tmp_path):
        run_campaign(pinned_config, store=tmp_path / "s")
        other = pinned_config.with_graphs(5)
        with pytest.raises(StoreError, match="different campaign"):
            run_campaign(other, store=tmp_path / "s", resume=True)


class TestKillAndResume:
    @pytest.mark.skipif(os.name != "posix", reason="needs SIGKILL")
    def test_sigkill_mid_campaign_then_resume(self, pinned_config, tmp_path):
        """A campaign killed with SIGKILL resumes to bit-identical rows."""
        from dataclasses import replace

        cfg = replace(pinned_config, num_graphs=3)  # 6 units: room to die in
        store_dir = tmp_path / "killed"
        cfg_path = tmp_path / "config.json"
        cfg_path.write_text(json.dumps(cfg.to_dict()))
        # The victim sleeps briefly after each unit so the parent can land
        # the kill mid-campaign instead of racing a fast finish.
        script = (
            "import json, time\n"
            "from repro.experiments import ExperimentConfig, run_campaign\n"
            f"cfg = ExperimentConfig.from_dict(json.load(open({str(cfg_path)!r})))\n"
            f"run_campaign(cfg, store={str(store_dir)!r},\n"
            "             progress=lambda m: time.sleep(0.3))\n"
        )
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        rows_path = store_dir / "rows.jsonl"
        deadline = time.monotonic() + 60.0
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if rows_path.exists() and rows_path.read_bytes().count(b"\n") >= 1:
                    break
                time.sleep(0.02)
            assert rows_path.exists(), "victim campaign never wrote a row"
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        completed_before = len(RunStore(store_dir))
        assert completed_before < 6, "kill landed too late to test resume"

        resumed = run_campaign(cfg, store=store_dir, resume=True)
        fresh = run_campaign(cfg)
        assert resumed.rows() == fresh.rows()
        assert len(RunStore(store_dir)) == 6


class TestMultiScenarioGrid:
    def test_run_grid_returns_one_result_per_scenario(self, pinned_config):
        from dataclasses import replace

        base = replace(
            pinned_config, model="oneport", topology=None, num_graphs=1
        )
        grid = ScenarioGrid.from_scenarios(base, topologies=("ring",))
        results = run_grid(grid)
        assert len(results) == 2
        clique, ring = results
        assert clique.config.topology is None
        assert ring.config.topology == "ring"
        assert clique.scenario_columns()["topology"] == "clique"
        assert ring.scenario_columns()["topology"] == "ring"
        # Scenario tags land in every aggregated row.
        assert {row["topology"] for row in ring.rows()} == {"ring"}
        # Paired instances: same DAG seeds, different interconnect.
        assert clique.rows() != ring.rows()
