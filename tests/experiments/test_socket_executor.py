"""Socket-executor integration tests (localhost master + worker processes).

Marked ``distributed``: run only these with
``pytest -m distributed``, or skip them with ``-m "not distributed"``.
Each campaign gets a 60 s no-activity timeout — a master that stops
hearing from every worker fails loudly instead of wedging the suite —
and the whole module is skipped where localhost sockets are unavailable.
"""

import socket

import pytest

from repro.experiments import SocketExecutor, run_campaign
from repro.experiments.executors.socket import _LineConn, sockets_available

pytestmark = [
    pytest.mark.distributed,
    pytest.mark.skipif(
        not sockets_available(), reason="localhost sockets unavailable"
    ),
]

#: hard deadline for every socket campaign in this module
DEADLINE_S = 60.0


def _serial_rep_rows(config):
    """Per-rep serial baseline rows (for stores without a manifest)."""
    from repro.experiments.executors import SerialExecutor
    from repro.experiments.grid import ScenarioGrid
    from repro.experiments.store import RunStore

    store = RunStore()
    SerialExecutor().run(ScenarioGrid.from_config(config).units(), store)
    return store.rep_rows()


class TestSocketExecutor:
    def test_two_workers_match_serial(self, pinned_config, pinned_serial_rows):
        messages = []
        result = run_campaign(
            pinned_config,
            executor=SocketExecutor(spawn_workers=2, timeout=DEADLINE_S),
            progress=messages.append,
        )
        assert result.rows() == pinned_serial_rows
        assert len(messages) == 4

    def test_worker_death_requeues_units(self, pinned_config, pinned_serial_rows):
        # One worker vanishes after a single unit (simulated crash); the
        # surviving worker picks up the requeued work — rows unchanged.
        executor = SocketExecutor(
            spawn_workers=[["--max-units", "1"], []], timeout=DEADLINE_S
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows

    def test_slow_heartbeat_worker_not_declared_dead(
        self, pinned_config, pinned_serial_rows
    ):
        # The hello message carries the worker's own heartbeat interval;
        # the master scales its deadness deadline per connection, so a
        # worker beating slower than the master's default survives.
        executor = SocketExecutor(
            spawn_workers=[["--heartbeat", "2.0"]], timeout=DEADLINE_S
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows

    def test_no_workers_times_out(self, pinned_config):
        executor = SocketExecutor(spawn_workers=0, timeout=1.0)
        with pytest.raises(TimeoutError, match="workers connected"):
            run_campaign(pinned_config, executor=executor)

    def test_slow_unit_with_live_heartbeats_not_timed_out(self, pinned_config):
        # `timeout` is a no-activity deadline, not a per-unit bound: a
        # worker that takes 3x the timeout to compute one unit while
        # heartbeating must not kill the campaign.
        import threading
        import time

        from repro.experiments.grid import ScenarioGrid, WorkUnit
        from repro.experiments.store import RunStore, result_to_dict

        units = ScenarioGrid.from_config(pinned_config).units()[:1]
        executor = SocketExecutor(spawn_workers=0, timeout=1.0)
        store = RunStore()
        errors = []

        def master():
            try:
                executor.run(units, store)
            except Exception as exc:
                errors.append(exc)

        thread = threading.Thread(target=master)
        thread.start()
        while executor.address is None:
            time.sleep(0.01)
        lc = _LineConn(socket.create_connection(executor.address, timeout=10.0))
        try:
            lc.send({"type": "hello", "worker": "slow", "heartbeat": 0.3})
            message = lc.recv(timeout=10.0)
            assert message["type"] == "unit"
            unit = WorkUnit.from_dict(message["unit"])
            result = unit.run()
            for _ in range(10):  # pretend the compute takes 3 s
                time.sleep(0.3)
                lc.send({"type": "heartbeat"})
            lc.send({"type": "result", "unit_id": unit.unit_id,
                     "result": result_to_dict(result)})
            assert lc.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            lc.close()
            thread.join(timeout=10.0)
        assert not errors
        assert len(store) == 1

    def test_all_spawned_workers_dead_fails_fast(self, pinned_config):
        # A config whose units crash every worker (unknown algorithm name
        # explodes inside run_rep) must not sit out the full timeout: the
        # master notices all its spawned workers exited and raises.
        from dataclasses import replace

        poison = replace(pinned_config, algorithms=("caft", "no-such-algo"))
        executor = SocketExecutor(spawn_workers=2, timeout=DEADLINE_S)
        with pytest.raises(RuntimeError, match="spawned worker"):
            run_campaign(poison, executor=executor)

    def test_store_backed_socket_campaign(
        self, pinned_config, pinned_serial_rows, tmp_path
    ):
        run_campaign(
            pinned_config,
            executor=SocketExecutor(spawn_workers=2, timeout=DEADLINE_S),
            store=tmp_path / "s",
        )
        from repro.experiments import CampaignResult, RunStore

        reloaded = CampaignResult.from_store(RunStore(tmp_path / "s"))
        assert reloaded.rows() == pinned_serial_rows


class TestBatchLeases:
    def test_fixed_lease_matches_serial(self, pinned_config, pinned_serial_rows):
        executor = SocketExecutor(spawn_workers=2, timeout=DEADLINE_S, lease=3)
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows

    def test_crash_mid_lease_requeues_remainder(
        self, pinned_config, pinned_serial_rows
    ):
        # The fault worker completes one unit of its 2-unit lease and
        # vanishes; per-unit acks mean only the *remainder* requeues —
        # rows stay bit-identical and the injected fault exits distinctly.
        from repro.experiments.executors import (
            WORKER_EXIT_FAULT_INJECTED,
            WORKER_EXIT_OK,
        )

        executor = SocketExecutor(
            spawn_workers=[["--max-units", "1"], []],
            timeout=DEADLINE_S,
            lease=2,
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows
        assert sorted(executor.worker_exit_codes) == sorted(
            [WORKER_EXIT_FAULT_INJECTED, WORKER_EXIT_OK]
        )

    def test_crash_at_lease_boundary_requeues_next_lease(self, pinned_config):
        # The fault worker completes its whole first lease (--max-units
        # == lease size) and vanishes exactly at the lease boundary: the
        # master has already claimed the next lease when the send/recv
        # fails, and must requeue it rather than strand it in flight.
        from dataclasses import replace

        cfg = replace(pinned_config, num_graphs=3)  # 6 units
        executor = SocketExecutor(
            spawn_workers=[["--max-units", "2"], []],
            timeout=DEADLINE_S,
            lease=2,
        )
        result = run_campaign(cfg, executor=executor)
        assert result.rows() == run_campaign(cfg).rows()

    def _drive_master(self, pinned_config, worker):
        """Run a master against a hand-rolled worker implementation."""
        import threading
        import time

        from repro.experiments.grid import ScenarioGrid
        from repro.experiments.store import RunStore

        units = ScenarioGrid.from_config(pinned_config).units()
        executor = SocketExecutor(spawn_workers=0, timeout=DEADLINE_S)
        store = RunStore()
        errors = []

        def master():
            try:
                executor.run(units, store)
            except Exception as exc:  # surfaced to the test below
                errors.append(exc)

        thread = threading.Thread(target=master)
        thread.start()
        try:
            while executor.address is None:
                time.sleep(0.01)
            lc = _LineConn(
                socket.create_connection(executor.address, timeout=10.0)
            )
            try:
                worker(lc)
            finally:
                lc.close()
        finally:
            thread.join(timeout=15.0)
        assert not errors, errors
        assert len(store) == len(units)
        return store

    def test_v1_worker_negotiation(self, pinned_config, pinned_serial_rows):
        # A hello without a proto field is a v1 worker: the master must
        # stream single `unit` messages, never a `lease`.
        from repro.experiments.grid import WorkUnit
        from repro.experiments.store import result_to_dict

        def v1_worker(lc):
            lc.send({"type": "hello", "worker": "legacy", "heartbeat": 0.3})
            while True:
                message = lc.recv(timeout=10.0)
                if message["type"] == "shutdown":
                    return
                assert message["type"] == "unit", message["type"]
                unit = WorkUnit.from_dict(message["unit"])
                lc.send({
                    "type": "result",
                    "unit_id": unit.unit_id,
                    "result": result_to_dict(unit.run()),
                })

        store = self._drive_master(pinned_config, v1_worker)
        assert store.rep_rows() == _serial_rep_rows(pinned_config)

    def test_adaptive_lease_grows_with_fast_units(self, pinned_config):
        # First lease is 1 unit (no latency sample); after a fast result
        # the policy sizes the next lease to its fair share of the queue.
        from dataclasses import replace

        from repro.experiments.grid import WorkUnit
        from repro.experiments.store import result_to_dict

        lease_sizes = []

        def v2_worker(lc):
            lc.send({"type": "hello", "worker": "v2", "heartbeat": 0.3,
                     "proto": 2})
            while True:
                message = lc.recv(timeout=10.0)
                if message["type"] == "shutdown":
                    return
                assert message["type"] == "lease", message["type"]
                units = [WorkUnit.from_dict(d) for d in message["units"]]
                lease_sizes.append(len(units))
                for unit in units:
                    lc.send({
                        "type": "result",
                        "unit_id": unit.unit_id,
                        "result": result_to_dict(unit.run()),
                        "seconds": 0.01,  # report fast units
                    })

        cfg = replace(pinned_config, num_graphs=3)  # 6 units
        self._drive_master(cfg, v2_worker)
        assert lease_sizes[0] == 1
        assert max(lease_sizes) > 1  # the master batched once calibrated
        assert sum(lease_sizes) == 6

    def test_duplicate_result_delivery_ignored(
        self, pinned_config, pinned_serial_rows
    ):
        # A worker acking the same unit twice (replayed delivery) must
        # not corrupt the store or kill the connection.
        from repro.experiments.grid import WorkUnit
        from repro.experiments.store import result_to_dict

        def duplicating_worker(lc):
            lc.send({"type": "hello", "worker": "dup", "heartbeat": 0.3,
                     "proto": 2})
            while True:
                message = lc.recv(timeout=10.0)
                if message["type"] == "shutdown":
                    return
                units = [WorkUnit.from_dict(d) for d in message["units"]]
                for unit in units:
                    ack = {
                        "type": "result",
                        "unit_id": unit.unit_id,
                        "result": result_to_dict(unit.run()),
                        "seconds": 0.01,
                    }
                    lc.send(ack)
                    lc.send(ack)  # duplicate delivery

        store = self._drive_master(pinned_config, duplicating_worker)
        assert store.rep_rows() == _serial_rep_rows(pinned_config)


class TestWireProtocol:
    def test_line_conn_round_trip(self):
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()[:2]
        client = socket.create_connection((host, port), timeout=5.0)
        conn, _ = server.accept()
        a, b = _LineConn(client), _LineConn(conn)
        try:
            a.send({"type": "hello", "worker": "w1"})
            assert b.recv(timeout=5.0) == {"type": "hello", "worker": "w1"}
            b.send({"type": "unit", "unit": {"granularity": 0.5}})
            assert a.recv(timeout=5.0)["unit"] == {"granularity": 0.5}
            # Closing via the _LineConn releases the makefile reference too,
            # so the peer observes EOF (a bare sock.close() would not).
            a.close()
            with pytest.raises(ConnectionError):
                b.recv(timeout=5.0)
        finally:
            a.close()
            b.close()
            server.close()
