"""Socket-executor integration tests (localhost master + worker processes).

Marked ``distributed``: run only these with
``pytest -m distributed``, or skip them with ``-m "not distributed"``.
Each campaign gets a 60 s no-activity timeout — a master that stops
hearing from every worker fails loudly instead of wedging the suite —
and the whole module is skipped where localhost sockets are unavailable.
"""

import socket

import pytest

from repro.experiments import SocketExecutor, run_campaign
from repro.experiments.executors.socket import _LineConn


def _sockets_available() -> bool:
    try:
        probe = socket.create_server(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


pytestmark = [
    pytest.mark.distributed,
    pytest.mark.skipif(
        not _sockets_available(), reason="localhost sockets unavailable"
    ),
]

#: hard deadline for every socket campaign in this module
DEADLINE_S = 60.0


class TestSocketExecutor:
    def test_two_workers_match_serial(self, pinned_config, pinned_serial_rows):
        messages = []
        result = run_campaign(
            pinned_config,
            executor=SocketExecutor(spawn_workers=2, timeout=DEADLINE_S),
            progress=messages.append,
        )
        assert result.rows() == pinned_serial_rows
        assert len(messages) == 4

    def test_worker_death_requeues_units(self, pinned_config, pinned_serial_rows):
        # One worker vanishes after a single unit (simulated crash); the
        # surviving worker picks up the requeued work — rows unchanged.
        executor = SocketExecutor(
            spawn_workers=[["--max-units", "1"], []], timeout=DEADLINE_S
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows

    def test_slow_heartbeat_worker_not_declared_dead(
        self, pinned_config, pinned_serial_rows
    ):
        # The hello message carries the worker's own heartbeat interval;
        # the master scales its deadness deadline per connection, so a
        # worker beating slower than the master's default survives.
        executor = SocketExecutor(
            spawn_workers=[["--heartbeat", "2.0"]], timeout=DEADLINE_S
        )
        result = run_campaign(pinned_config, executor=executor)
        assert result.rows() == pinned_serial_rows

    def test_no_workers_times_out(self, pinned_config):
        executor = SocketExecutor(spawn_workers=0, timeout=1.0)
        with pytest.raises(TimeoutError, match="workers connected"):
            run_campaign(pinned_config, executor=executor)

    def test_slow_unit_with_live_heartbeats_not_timed_out(self, pinned_config):
        # `timeout` is a no-activity deadline, not a per-unit bound: a
        # worker that takes 3x the timeout to compute one unit while
        # heartbeating must not kill the campaign.
        import threading
        import time

        from repro.experiments.grid import ScenarioGrid, WorkUnit
        from repro.experiments.store import RunStore, result_to_dict

        units = ScenarioGrid.from_config(pinned_config).units()[:1]
        executor = SocketExecutor(spawn_workers=0, timeout=1.0)
        store = RunStore()
        errors = []

        def master():
            try:
                executor.run(units, store)
            except Exception as exc:
                errors.append(exc)

        thread = threading.Thread(target=master)
        thread.start()
        while executor.address is None:
            time.sleep(0.01)
        lc = _LineConn(socket.create_connection(executor.address, timeout=10.0))
        try:
            lc.send({"type": "hello", "worker": "slow", "heartbeat": 0.3})
            message = lc.recv(timeout=10.0)
            assert message["type"] == "unit"
            unit = WorkUnit.from_dict(message["unit"])
            result = unit.run()
            for _ in range(10):  # pretend the compute takes 3 s
                time.sleep(0.3)
                lc.send({"type": "heartbeat"})
            lc.send({"type": "result", "unit_id": unit.unit_id,
                     "result": result_to_dict(result)})
            assert lc.recv(timeout=10.0)["type"] == "shutdown"
        finally:
            lc.close()
            thread.join(timeout=10.0)
        assert not errors
        assert len(store) == 1

    def test_all_spawned_workers_dead_fails_fast(self, pinned_config):
        # A config whose units crash every worker (unknown algorithm name
        # explodes inside run_rep) must not sit out the full timeout: the
        # master notices all its spawned workers exited and raises.
        from dataclasses import replace

        poison = replace(pinned_config, algorithms=("caft", "no-such-algo"))
        executor = SocketExecutor(spawn_workers=2, timeout=DEADLINE_S)
        with pytest.raises(RuntimeError, match="spawned worker"):
            run_campaign(poison, executor=executor)

    def test_store_backed_socket_campaign(
        self, pinned_config, pinned_serial_rows, tmp_path
    ):
        run_campaign(
            pinned_config,
            executor=SocketExecutor(spawn_workers=2, timeout=DEADLINE_S),
            store=tmp_path / "s",
        )
        from repro.experiments import CampaignResult, RunStore

        reloaded = CampaignResult.from_store(RunStore(tmp_path / "s"))
        assert reloaded.rows() == pinned_serial_rows


class TestWireProtocol:
    def test_line_conn_round_trip(self):
        server = socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()[:2]
        client = socket.create_connection((host, port), timeout=5.0)
        conn, _ = server.accept()
        a, b = _LineConn(client), _LineConn(conn)
        try:
            a.send({"type": "hello", "worker": "w1"})
            assert b.recv(timeout=5.0) == {"type": "hello", "worker": "w1"}
            b.send({"type": "unit", "unit": {"granularity": 0.5}})
            assert a.recv(timeout=5.0)["unit"] == {"granularity": 0.5}
            # Closing via the _LineConn releases the makefile reference too,
            # so the peer observes EOF (a bare sock.close() would not).
            a.close()
            with pytest.raises(ConnectionError):
                b.recv(timeout=5.0)
        finally:
            a.close()
            b.close()
            server.close()
