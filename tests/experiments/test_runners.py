"""Tests for the harness's algorithm runner registries."""

import pytest

from repro.experiments.config import DEFAULT_ALGORITHMS, FIGURES
from repro.experiments.harness import (
    ALGORITHM_RUNNERS,
    FAULTFREE_RUNNERS,
    generate_instance,
)
from repro.schedule.validation import validate_schedule


@pytest.fixture(scope="module")
def inst():
    cfg = FIGURES[1]
    return generate_instance(cfg, 1.0, 0)


class TestRegistries:
    def test_default_algorithms_have_runners(self):
        for name in DEFAULT_ALGORITHMS:
            assert name in ALGORITHM_RUNNERS
            assert name in FAULTFREE_RUNNERS

    def test_runners_produce_valid_schedules(self, inst):
        for name, runner in ALGORITHM_RUNNERS.items():
            sched = runner(inst, 1, 0, "oneport")
            validate_schedule(sched, expected_replicas=2)
            assert sched.epsilon == 1

    def test_faultfree_runners_single_replica(self, inst):
        for name, runner in FAULTFREE_RUNNERS.items():
            sched = runner(inst, 0, "oneport")
            validate_schedule(sched, expected_replicas=1)

    def test_runners_deterministic_in_seed(self, inst):
        for name, runner in ALGORITHM_RUNNERS.items():
            a = runner(inst, 1, 123, "oneport").latency()
            b = runner(inst, 1, 123, "oneport").latency()
            assert a == b, name

    def test_runner_names_match_schedules(self, inst):
        for name, runner in ALGORITHM_RUNNERS.items():
            sched = runner(inst, 1, 0, "oneport")
            assert sched.scheduler.startswith(name.split("-")[0])

    def test_macro_model_supported(self, inst):
        sched = ALGORITHM_RUNNERS["ftsa"](inst, 1, 0, "macro-dataflow")
        assert sched.model == "macro-dataflow"
