"""Tests for FTBAR."""

import pytest

from repro.fault.scenarios import check_robustness
from repro.schedule.metrics import message_bound_ftsa
from repro.schedule.validation import validate_schedule
from repro.schedulers.ftbar import ftbar
from tests.conftest import make_instance


class TestReplication:
    def test_replica_count(self, epsilon):
        inst = make_instance()
        sched = ftbar(inst, epsilon, rng=0)
        assert all(len(reps) == epsilon + 1 for reps in sched.replicas)
        validate_schedule(sched)

    def test_deterministic(self):
        inst = make_instance()
        assert (
            ftbar(inst, 1, rng=7).latency() == ftbar(inst, 1, rng=7).latency()
        )

    def test_message_bound(self, epsilon):
        inst = make_instance()
        sched = ftbar(inst, epsilon, rng=0)
        assert sched.message_count() <= message_bound_ftsa(sched)

    def test_robust_to_any_epsilon_failures(self):
        inst = make_instance(num_tasks=12, num_procs=5)
        sched = ftbar(inst, 1, rng=1)
        report = check_robustness(sched)
        assert report.robust, report.violations[:3]

    def test_eps0_single_replica(self):
        inst = make_instance()
        sched = ftbar(inst, 0, rng=0)
        validate_schedule(sched, expected_replicas=1)

    def test_all_tasks_scheduled_once(self):
        inst = make_instance(num_tasks=25)
        sched = ftbar(inst, 1, rng=0)
        assert sched.task_order and sorted(sched.task_order) == list(range(25))

    def test_too_few_processors_rejected(self):
        from repro.utils.errors import SchedulingError

        inst = make_instance(num_procs=3)
        with pytest.raises(SchedulingError):
            ftbar(inst, epsilon=4)

    def test_macro_model(self):
        inst = make_instance()
        assert ftbar(inst, 1, model="macro-dataflow", rng=0).latency() > 0


class TestSchedulePressure:
    def test_pressure_prefers_urgent_tasks(self):
        """FTBAR must schedule every free task eventually and in a valid
        topological order (pressure selection cannot starve tasks)."""
        inst = make_instance(num_tasks=30)
        sched = ftbar(inst, 1, rng=2)
        pos = {t: i for i, t in enumerate(sched.task_order)}
        for u, v, _ in inst.graph.edges():
            assert pos[u] < pos[v]
