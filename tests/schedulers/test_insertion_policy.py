"""Scheduler-level gap reuse: insertion must beat append when a gap exists.

A hand-built scenario on 4 processors (unit delays, costs force every
placement):

* ``t0`` runs on P2 (finish 1), ``t1`` on P0 (finish 2);
* ``t2`` (dep ``t0``, vol 10) runs on P1 — its message occupies P1's
  receive port over [1, 11);
* ``t3`` (dep ``t1``, vol 4) also runs on P1 — its message must wait for
  P1's port, so it holds **P0's send port over [11, 15)**, leaving the
  idle gap [2, 11) in front of it;
* ``t4`` (dep ``t1``, vol 3) runs on P3.  Append-only serialization
  (the paper's eqs. (4)/(6)) queues its message behind the [11, 15)
  reservation — start 15, arrive 18, finish 19.  The insertion policy
  slots it into the gap — start 2, arrive 5, finish 6 — cutting the
  schedule latency from 19 to 16 (``t3``'s path becomes critical).

Asserted for HEFT and CAFT (ε = 0 — identical placements by
construction), with the exact latencies so any drift in either policy's
algebra fails loudly.
"""

import numpy as np
import pytest

from repro.comm.oneport import OnePortNetwork
from repro.core.caft import caft
from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedulers.heft import heft


@pytest.fixture
def gap_instance() -> ProblemInstance:
    graph = TaskGraph(5, [(0, 2, 10.0), (1, 3, 4.0), (1, 4, 3.0)])
    platform = Platform.homogeneous(4, unit_delay=1.0)
    exec_cost = np.array(
        [
            [100.0, 100.0, 1.0, 100.0],  # t0 -> P2
            [2.0, 100.0, 100.0, 100.0],  # t1 -> P0
            [100.0, 1.0, 100.0, 100.0],  # t2 -> P1
            [90.0, 1.0, 90.0, 90.0],  # t3 -> P1
            [80.0, 80.0, 80.0, 1.0],  # t4 -> P3
        ]
    )
    return ProblemInstance(graph, platform, exec_cost)


def _latency(run, inst, policy: str) -> float:
    net = OnePortNetwork(inst.platform, policy=policy)
    return run(inst, net).latency()


@pytest.mark.parametrize("fast", [False, True], ids=["slow", "fast"])
def test_heft_insertion_beats_append(gap_instance, fast):
    run = lambda inst, net: heft(inst, model=net, rng=0, fast=fast)  # noqa: E731
    append = _latency(run, gap_instance, "append")
    insertion = _latency(run, gap_instance, "insertion")
    assert append == 19.0
    assert insertion == 16.0
    assert insertion < append


@pytest.mark.parametrize("fast", [False, True], ids=["slow", "fast"])
def test_caft_insertion_beats_append(gap_instance, fast):
    run = lambda inst, net: caft(inst, 0, model=net, rng=0, fast=fast)  # noqa: E731
    append = _latency(run, gap_instance, "append")
    insertion = _latency(run, gap_instance, "insertion")
    assert append == 19.0
    assert insertion == 16.0
    assert insertion < append


def test_caft_replicated_insertion_never_loses(gap_instance):
    """With replication (ε = 1) the platform saturates and the gap win
    may vanish — but gap filling can never make the schedule later."""
    for fast in (False, True):
        run = lambda inst, net: caft(inst, 1, model=net, rng=0, fast=fast)  # noqa: E731
        append = _latency(run, gap_instance, "append")
        insertion = _latency(run, gap_instance, "insertion")
        assert insertion <= append
