"""Tests for HEFT."""

import numpy as np
import pytest

from repro.dag.generators import chain, fork_join
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedule.validation import validate_schedule
from repro.schedulers.heft import heft
from tests.conftest import make_instance


class TestBasics:
    def test_one_replica_per_task(self):
        inst = make_instance()
        sched = heft(inst)
        assert all(len(reps) == 1 for reps in sched.replicas)
        validate_schedule(sched, expected_replicas=1)

    def test_deterministic_given_seed(self):
        inst = make_instance()
        a, b = heft(inst, rng=5), heft(inst, rng=5)
        assert a.latency() == b.latency()
        assert a.message_count() == b.message_count()

    def test_latency_positive(self):
        inst = make_instance()
        assert heft(inst).latency() > 0

    def test_chain_stays_on_one_proc_when_comm_heavy(self):
        """With expensive comms and identical procs, HEFT keeps a chain local."""
        graph = chain(4, volume=1000.0)
        platform = Platform.homogeneous(3, unit_delay=1.0)
        E = np.full((4, 3), 1.0)
        inst = ProblemInstance(graph, platform, E)
        sched = heft(inst)
        procs = {reps[0].proc for reps in sched.replicas}
        assert len(procs) == 1
        assert sched.message_count() == 0
        assert sched.latency() == pytest.approx(4.0)

    def test_fork_join_spreads_when_comm_free(self):
        graph = fork_join(3, volume=0.0)
        platform = Platform.homogeneous(4, unit_delay=1.0)
        E = np.full((5, 4), 10.0)
        inst = ProblemInstance(graph, platform, E)
        sched = heft(inst)
        # the three middle tasks run in parallel: latency 3 * 10
        assert sched.latency() == pytest.approx(30.0)

    def test_picks_fast_processor(self):
        graph = chain(1)  # single task
        platform = Platform.homogeneous(3, unit_delay=1.0)
        E = np.array([[9.0, 2.0, 5.0]])
        inst = ProblemInstance(graph, platform, E)
        sched = heft(inst)
        assert sched.replicas[0][0].proc == 1
        assert sched.latency() == 2.0


class TestModels:
    def test_macro_dataflow_not_slower(self):
        """Removing contention can only help (same greedy decisions aside)."""
        inst = make_instance(granularity=0.3, seed=3)
        one = heft(inst, model="oneport", rng=1).latency()
        macro = heft(inst, model="macro-dataflow", rng=1).latency()
        # not a theorem for greedy list scheduling, but holds on this seed —
        # the point is both models run end to end
        assert macro > 0 and one > 0

    def test_priority_options(self):
        inst = make_instance()
        for priority, dynamic in (("bl", False), ("tl+bl", False), ("tl+bl", True)):
            sched = heft(inst, priority=priority, dynamic=dynamic)
            validate_schedule(sched, expected_replicas=1)

    def test_unknown_priority_rejected(self):
        from repro.utils.errors import SchedulingError

        inst = make_instance()
        with pytest.raises(SchedulingError):
            heft(inst, priority="random")
