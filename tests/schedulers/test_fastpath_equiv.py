"""Fast-path equivalence: the placement kernel must be bit-identical.

``fast=True`` routes every candidate evaluation through
:class:`repro.schedule.kernel.TrialKernel`; the contract is that the
committed schedule — every replica, every message, every float — is
indistinguishable from the slow reserve-and-rollback path.  This suite
compares full commit logs for all four algorithms (plus the batched CAFT
extension) across ε ∈ {0, 1, 2} and 10 seeded random instances for
every kernel-capable model — the paper's one-port, its §2 variants, the
contention-free macro model, the insertion-policy ablation and routed
sparse topologies (ring, torus, star) — and exercises both kernel
formulations (the scalar loop and the forced-NumPy batch pass).
"""

import numpy as np
import pytest

from repro.comm.oneport import OnePortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.dag.generators import random_dag
from repro.platform.heterogeneity import range_exec_matrix, uniform_delay_platform
from repro.platform.instance import ProblemInstance
from repro.platform.topology import make_topology, randomize_link_delays
from repro.schedule.kernel import TrialKernel
from repro.schedule.schedule import Replica, Schedule
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft

SEEDS = list(range(10))
MODELS = ("oneport", "macro-dataflow")
EPSILONS = (0, 1, 2)
#: §7 sparse interconnect shapes pinned by the routed equivalence matrix
TOPOLOGY_SHAPES = ("ring", "torus", "star")

ALGORITHMS = {
    "heft": lambda inst, eps, model, fast: heft(
        inst, model=model, rng=eps, fast=fast
    ),
    "ftsa": lambda inst, eps, model, fast: ftsa(
        inst, eps, model=model, rng=eps, fast=fast
    ),
    "ftbar": lambda inst, eps, model, fast: ftbar(
        inst, eps, model=model, rng=eps, fast=fast
    ),
    "caft": lambda inst, eps, model, fast: caft(
        inst, eps, model=model, rng=eps, fast=fast
    ),
    "caft-batch": lambda inst, eps, model, fast: caft_batch(
        inst, eps, window=3, model=model, rng=eps, fast=fast
    ),
}


def make_instance(seed: int, num_tasks: int = 14, num_procs: int = 5):
    rng = np.random.default_rng(seed)
    graph = random_dag(num_tasks, degree_range=(1, 3), volume_range=(5.0, 20.0), rng=rng)
    platform = uniform_delay_platform(num_procs, rng=rng)
    base = rng.uniform(1.0, 3.0, size=num_tasks)
    exec_cost = range_exec_matrix(base, num_procs, heterogeneity=0.5, rng=rng)
    return ProblemInstance(graph, platform, exec_cost)


def make_routed_instance(seed: int, shape: str, num_tasks: int = 14, num_procs: int = 6):
    """Instance over a sparse interconnect: the platform is the topology's
    effective route-delay matrix, per-link delays drawn per seed."""
    rng = np.random.default_rng(seed)
    graph = random_dag(num_tasks, degree_range=(1, 3), volume_range=(5.0, 20.0), rng=rng)
    topo = randomize_link_delays(
        make_topology(shape, num_procs), (0.5, 1.0), rng
    )
    base = rng.uniform(1.0, 3.0, size=num_tasks)
    exec_cost = range_exec_matrix(base, num_procs, heterogeneity=0.5, rng=rng)
    return ProblemInstance(graph, topo.to_platform(), exec_cost), topo


def commit_signature(schedule: Schedule) -> list[tuple]:
    """The full commit log as comparable tuples (exact floats)."""
    out = []
    for entry in schedule.commit_log:
        if isinstance(entry, Replica):
            out.append(
                (
                    "R",
                    entry.task,
                    entry.index,
                    entry.proc,
                    entry.start,
                    entry.finish,
                    entry.kind,
                    tuple(sorted(entry.support)),
                )
            )
        else:
            out.append(
                (
                    "C",
                    entry.src_task,
                    entry.dst_task,
                    entry.src_proc,
                    entry.dst_proc,
                    entry.volume,
                    entry.start,
                    entry.finish,
                )
            )
    return out


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("epsilon", EPSILONS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_fast_slow_identical_commit_logs(algo, epsilon, model):
    if algo == "heft" and epsilon:
        pytest.skip("HEFT has no replication parameter")
    run = ALGORITHMS[algo]
    for seed in SEEDS:
        inst = make_instance(seed)
        slow = run(inst, epsilon, model, False)
        fast = run(inst, epsilon, model, True)
        assert commit_signature(slow) == commit_signature(fast), (
            f"{algo} eps={epsilon} model={model} seed={seed}"
        )
        assert slow.latency() == fast.latency()
        assert slow.task_order == fast.task_order


@pytest.mark.parametrize("model", MODELS)
def test_numpy_batch_formulation_identical(model, monkeypatch):
    """Force the NumPy batch pass (normally reserved for large sweeps)."""
    monkeypatch.setattr(TrialKernel, "numpy_threshold", 0)
    monkeypatch.setattr(TrialKernel, "sweep_numpy_threshold", 0)
    for seed in SEEDS[:3]:
        inst = make_instance(seed)
        for algo in ("ftsa", "ftbar", "caft"):
            slow = ALGORITHMS[algo](inst, 1, model, False)
            fast = ALGORITHMS[algo](inst, 1, model, True)
            assert commit_signature(slow) == commit_signature(fast), (
                f"{algo} model={model} seed={seed} (numpy path)"
            )


@pytest.mark.parametrize("model", ("uniport", "oneport-nooverlap"))
def test_oneport_variants_identical(model):
    """The §2 model variants go through the kernel too.

    FTBAR must be in this matrix: it is the only algorithm exercising
    the kernel's epoch cache, whose invalidation rules are exactly where
    the variants differ (uniport aliases the send/receive ports, so a
    commit dirties both sides of every touched processor).
    """
    for seed in SEEDS[:6]:
        for num_tasks, num_procs in ((14, 5), (18, 8)):
            inst = make_instance(seed, num_tasks=num_tasks, num_procs=num_procs)
            for algo in ("ftsa", "ftbar", "caft"):
                for epsilon in (0, 1):
                    slow = ALGORITHMS[algo](inst, epsilon, model, False)
                    fast = ALGORITHMS[algo](inst, epsilon, model, True)
                    assert commit_signature(slow) == commit_signature(fast), (
                        f"{algo} model={model} seed={seed} eps={epsilon} "
                        f"v={num_tasks} m={num_procs}"
                    )


@pytest.mark.parametrize("shape", TOPOLOGY_SHAPES)
@pytest.mark.parametrize("epsilon", EPSILONS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_routed_fast_slow_identical_commit_logs(algo, epsilon, shape):
    """Routed sparse topologies go through the route-aware evaluator.

    FTBAR matters most here: its epoch cache must notice that two
    routes sharing a physical link dirty each other (ring and star force
    heavy route sharing), which is exactly what the per-directed-hop
    epochs exist for.
    """
    if algo == "heft" and epsilon:
        pytest.skip("HEFT has no replication parameter")
    run = ALGORITHMS[algo]
    for seed in SEEDS:
        inst, topo = make_routed_instance(seed, shape)
        slow = run(inst, epsilon, RoutedOnePortNetwork(topo), False)
        fast = run(inst, epsilon, RoutedOnePortNetwork(topo), True)
        assert commit_signature(slow) == commit_signature(fast), (
            f"{algo} eps={epsilon} topology={shape} seed={seed}"
        )
        assert slow.latency() == fast.latency()
        assert slow.task_order == fast.task_order


@pytest.mark.parametrize("epsilon", EPSILONS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_insertion_policy_fast_slow_identical_commit_logs(algo, epsilon):
    """The gap-reusing insertion policy goes through the kernel too —
    trials must replay the first-common-gap scan bit-identically."""
    if algo == "heft" and epsilon:
        pytest.skip("HEFT has no replication parameter")
    run = ALGORITHMS[algo]
    for seed in SEEDS:
        inst = make_instance(seed)
        slow = run(
            inst, epsilon, OnePortNetwork(inst.platform, policy="insertion"), False
        )
        fast = run(
            inst, epsilon, OnePortNetwork(inst.platform, policy="insertion"), True
        )
        assert commit_signature(slow) == commit_signature(fast), (
            f"{algo} eps={epsilon} model=oneport/insertion seed={seed}"
        )
        assert slow.latency() == fast.latency()
        assert slow.task_order == fast.task_order


@pytest.mark.parametrize("shape", TOPOLOGY_SHAPES)
@pytest.mark.parametrize("epsilon", EPSILONS)
def test_routed_batched_sweep_identical(shape, epsilon, monkeypatch):
    """Force ``sweep_trials_batch``'s lockstep routed evaluator (normally
    reserved for large sweeps) and pin it bit-identical to the slow path
    for HEFT, FTSA and FTBAR across every routed topology shape."""
    monkeypatch.setattr(TrialKernel, "routed_numpy_threshold", 0)
    for seed in SEEDS:
        inst, topo = make_routed_instance(seed, shape)
        for algo in ("heft", "ftsa", "ftbar"):
            if algo == "heft" and epsilon:
                continue
            slow = ALGORITHMS[algo](inst, epsilon, RoutedOnePortNetwork(topo), False)
            fast = ALGORITHMS[algo](inst, epsilon, RoutedOnePortNetwork(topo), True)
            assert commit_signature(slow) == commit_signature(fast), (
                f"{algo} eps={epsilon} topology={shape} seed={seed} (batched sweep)"
            )


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_insertion_batched_sweep_identical(epsilon, monkeypatch):
    """Force the batched insertion evaluator (vectorized key prologue +
    per-row gap-array replay) and pin it bit-identical to the slow path
    for HEFT, FTSA and FTBAR."""
    monkeypatch.setattr(TrialKernel, "insertion_numpy_threshold", 0)
    for seed in SEEDS:
        inst = make_instance(seed)
        for algo in ("heft", "ftsa", "ftbar"):
            if algo == "heft" and epsilon:
                continue
            slow = ALGORITHMS[algo](
                inst, epsilon, OnePortNetwork(inst.platform, policy="insertion"), False
            )
            fast = ALGORITHMS[algo](
                inst, epsilon, OnePortNetwork(inst.platform, policy="insertion"), True
            )
            assert commit_signature(slow) == commit_signature(fast), (
                f"{algo} eps={epsilon} model=oneport/insertion seed={seed} "
                "(batched sweep)"
            )


def test_kernel_stats_counters_and_epoch_cache():
    """``kernel_stats()`` exposes evaluator kind, cache traffic and batch
    vs scalar volumes; a repeated candidate sweep with untouched
    resources must be served entirely from the epoch cache."""
    from repro.schedulers.base import make_builder

    inst = make_instance(0)
    m = inst.num_procs
    builder = make_builder(inst, 1, "oneport", "t", fast=True)
    task = next(t for t in inst.graph.topological_order() if not inst.graph.preds(t))
    first = builder.trial_batch(task, range(m), {})
    stats = builder.kernel_stats()
    assert stats["evaluator"] == "oneport"
    assert stats["cache_misses"] == m and stats["cache_hits"] == 0
    assert stats["scalar_rows"] + stats["batch_rows"] == m
    second = builder.trial_batch(task, range(m), {})
    stats = builder.kernel_stats()
    assert stats["cache_hits"] == m, "repeat sweep must be all cache hits"
    assert stats["cache_hit_rate"] == 0.5
    assert [(t.start, t.finish) for t in first] == [
        (t.start, t.finish) for t in second
    ]
    assert make_builder(inst, 1, "oneport", "t", fast=False).kernel_stats() is None


def test_fallback_warning_names_capability(caplog):
    """The one-time fallback warning must say *which* declared capability
    combination forced the slow path."""
    import logging

    from repro.comm.base import KernelCaps
    from repro.schedule import kernel as kernel_mod
    from repro.schedulers.base import make_builder

    class RoutedGapNetwork(RoutedOnePortNetwork):
        name = "routed-gap-hybrid"

        def kernel_caps(self):
            return KernelCaps(routed=True, gap_timelines=True)

    kernel_mod._fallback_warned.clear()
    rinst, topo = make_routed_instance(0, "ring")
    with caplog.at_level(logging.WARNING, logger="repro.schedule.kernel"):
        builder = make_builder(rinst, 1, RoutedGapNetwork(topo), "t", fast=True)
    assert not builder.fast
    warnings = [r for r in caplog.records if "reserve-and-rollback" in r.message]
    assert len(warnings) == 1
    assert "'gap_timelines+routed'" in warnings[0].message


def test_filtered_pools_do_not_alias_entry_cache():
    """Same-length but different source pools must not hit a stale cache.

    Only canonical full-fan-in pools (the live ``schedule.replicas``
    lists) are cacheable; an arbitrary filtered pool of equal length is
    evaluated fresh.
    """
    from repro.schedulers.base import make_builder

    inst = make_instance(0)
    graph = inst.graph
    task = next(t for t in graph.topological_order() if len(graph.preds(t)) == 1)
    pred = graph.preds(task)[0]

    def run(fast):
        builder = make_builder(inst, 1, "oneport", "t", fast=fast)
        for t in graph.topological_order():
            if t == task:
                break
            for proc in (0, 1):
                builder.commit(
                    t, proc, {p: builder.schedule.replicas[p] for p in graph.preds(t)}
                )
        reps = builder.schedule.replicas[pred]
        first = builder.trial_batch(task, [2, 3], {pred: [reps[0]]})
        second = builder.trial_batch(task, [2, 3], {pred: [reps[1]]})
        return [(t.start, t.finish) for t in first + second]

    assert run(True) == run(False)


class _CapabilityLessNetwork(OnePortNetwork):
    """A user subclass that opts out of the resource-frontier protocol."""

    name = "oneport-custom"

    def __init__(self, platform):
        super().__init__(platform, policy="append")

    def clone_args(self):
        return (self.platform,)

    def kernel_caps(self):
        return None


def test_unsupported_model_falls_back_with_warning(caplog):
    """A model without kernel capabilities must still work under
    ``fast=True`` — exact path, identical schedules — and the silent
    degradation of old must now announce itself exactly once."""
    import logging

    from repro.schedule import kernel as kernel_mod

    kernel_mod._fallback_warned.clear()
    inst = make_instance(0)
    with caplog.at_level(logging.WARNING, logger="repro.schedule.kernel"):
        sched = ftsa(inst, 1, model=_CapabilityLessNetwork(inst.platform), rng=0, fast=True)
        again = ftsa(inst, 1, model=_CapabilityLessNetwork(inst.platform), rng=0, fast=True)
    ref = ftsa(inst, 1, model=_CapabilityLessNetwork(inst.platform), rng=0, fast=False)
    assert commit_signature(sched) == commit_signature(ref)
    assert commit_signature(again) == commit_signature(ref)
    warnings = [r for r in caplog.records if "reserve-and-rollback" in r.message]
    assert len(warnings) == 1, "fallback warning must fire exactly once per model"
    assert "oneport-custom" in warnings[0].message
    assert "kernel_caps" in warnings[0].message


def test_subclass_with_overridden_semantics_falls_back():
    """A subclass that changes transfer semantics must NOT inherit the
    parent's kernel capabilities — the kernel would mirror the parent's
    algebra and silently diverge.  The built-in ``kernel_caps()`` guard
    on the exact type forces such subclasses onto the exact path."""
    from repro.schedulers.base import make_builder

    class DoubledOnePort(OnePortNetwork):
        """Overrides the algebra but *not* kernel_caps()."""

        def transfer_time(self, src, dst, volume):
            return 2.0 * super().transfer_time(src, dst, volume)

        def sender_bound(self, src, dst, ready, volume):
            if src == dst:
                return ready
            w = 2.0 * volume * self._delay[src][dst]
            if w == 0.0:
                return ready
            return max(ready, self._send_free[src], self._link_free[src * self._m + dst]) + w

        def place_transfer(self, src, dst, ready, volume):
            return super().place_transfer(src, dst, ready, 2.0 * volume)

    inst = make_instance(0)
    assert DoubledOnePort(inst.platform).kernel_caps() is None
    builder = make_builder(inst, 1, DoubledOnePort(inst.platform), "t", fast=True)
    assert not builder.fast, "subclass must not inherit the parent's kernel"
    fast = ftsa(inst, 1, model=DoubledOnePort(inst.platform), rng=0, fast=True)
    slow = ftsa(inst, 1, model=DoubledOnePort(inst.platform), rng=0, fast=False)
    assert commit_signature(fast) == commit_signature(slow)


def test_kernel_active_for_all_protocol_models():
    """Every capability-declaring model gets a kernel — no type checks."""
    from repro.schedulers.base import make_builder

    inst = make_instance(0, num_procs=5)
    for spec in (
        "oneport",
        "uniport",
        "oneport-nooverlap",
        "macro-dataflow",
        OnePortNetwork(inst.platform, policy="insertion"),
    ):
        builder = make_builder(inst, 1, spec, "t", fast=True)
        assert builder.fast, f"kernel inactive for {spec!r}"
    rinst, topo = make_routed_instance(0, "ring")
    builder = make_builder(rinst, 1, RoutedOnePortNetwork(topo), "t", fast=True)
    assert builder.fast, "kernel inactive for routed-oneport"
    builder = make_builder(
        rinst, 1, "routed-oneport", "t", topology=topo
    )
    assert builder.network.name == "routed-oneport", "registry spec must resolve"
