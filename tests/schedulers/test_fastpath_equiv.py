"""Fast-path equivalence: the placement kernel must be bit-identical.

``fast=True`` routes every candidate evaluation through
:class:`repro.schedule.kernel.TrialKernel`; the contract is that the
committed schedule — every replica, every message, every float — is
indistinguishable from the slow reserve-and-rollback path.  This suite
compares full commit logs for all four algorithms (plus the batched CAFT
extension) across ε ∈ {0, 1, 2}, both network models and 10 seeded
random instances, and exercises both kernel formulations (the scalar
loop and the forced-NumPy batch pass).
"""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.dag.generators import random_dag
from repro.platform.heterogeneity import range_exec_matrix, uniform_delay_platform
from repro.platform.instance import ProblemInstance
from repro.schedule.kernel import TrialKernel
from repro.schedule.schedule import Replica, Schedule
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft

SEEDS = list(range(10))
MODELS = ("oneport", "macro-dataflow")
EPSILONS = (0, 1, 2)

ALGORITHMS = {
    "heft": lambda inst, eps, model, fast: heft(
        inst, model=model, rng=eps, fast=fast
    ),
    "ftsa": lambda inst, eps, model, fast: ftsa(
        inst, eps, model=model, rng=eps, fast=fast
    ),
    "ftbar": lambda inst, eps, model, fast: ftbar(
        inst, eps, model=model, rng=eps, fast=fast
    ),
    "caft": lambda inst, eps, model, fast: caft(
        inst, eps, model=model, rng=eps, fast=fast
    ),
    "caft-batch": lambda inst, eps, model, fast: caft_batch(
        inst, eps, window=3, model=model, rng=eps, fast=fast
    ),
}


def make_instance(seed: int, num_tasks: int = 14, num_procs: int = 5):
    rng = np.random.default_rng(seed)
    graph = random_dag(num_tasks, degree_range=(1, 3), volume_range=(5.0, 20.0), rng=rng)
    platform = uniform_delay_platform(num_procs, rng=rng)
    base = rng.uniform(1.0, 3.0, size=num_tasks)
    exec_cost = range_exec_matrix(base, num_procs, heterogeneity=0.5, rng=rng)
    return ProblemInstance(graph, platform, exec_cost)


def commit_signature(schedule: Schedule) -> list[tuple]:
    """The full commit log as comparable tuples (exact floats)."""
    out = []
    for entry in schedule.commit_log:
        if isinstance(entry, Replica):
            out.append(
                (
                    "R",
                    entry.task,
                    entry.index,
                    entry.proc,
                    entry.start,
                    entry.finish,
                    entry.kind,
                    tuple(sorted(entry.support)),
                )
            )
        else:
            out.append(
                (
                    "C",
                    entry.src_task,
                    entry.dst_task,
                    entry.src_proc,
                    entry.dst_proc,
                    entry.volume,
                    entry.start,
                    entry.finish,
                )
            )
    return out


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("epsilon", EPSILONS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_fast_slow_identical_commit_logs(algo, epsilon, model):
    if algo == "heft" and epsilon:
        pytest.skip("HEFT has no replication parameter")
    run = ALGORITHMS[algo]
    for seed in SEEDS:
        inst = make_instance(seed)
        slow = run(inst, epsilon, model, False)
        fast = run(inst, epsilon, model, True)
        assert commit_signature(slow) == commit_signature(fast), (
            f"{algo} eps={epsilon} model={model} seed={seed}"
        )
        assert slow.latency() == fast.latency()
        assert slow.task_order == fast.task_order


@pytest.mark.parametrize("model", MODELS)
def test_numpy_batch_formulation_identical(model, monkeypatch):
    """Force the NumPy batch pass (normally reserved for large sweeps)."""
    monkeypatch.setattr(TrialKernel, "numpy_threshold", 0)
    monkeypatch.setattr(TrialKernel, "sweep_numpy_threshold", 0)
    for seed in SEEDS[:3]:
        inst = make_instance(seed)
        for algo in ("ftsa", "ftbar", "caft"):
            slow = ALGORITHMS[algo](inst, 1, model, False)
            fast = ALGORITHMS[algo](inst, 1, model, True)
            assert commit_signature(slow) == commit_signature(fast), (
                f"{algo} model={model} seed={seed} (numpy path)"
            )


@pytest.mark.parametrize("model", ("uniport", "oneport-nooverlap"))
def test_oneport_variants_identical(model):
    """The §2 model variants go through the kernel too.

    FTBAR must be in this matrix: it is the only algorithm exercising
    the kernel's epoch cache, whose invalidation rules are exactly where
    the variants differ (uniport aliases the send/receive ports, so a
    commit dirties both sides of every touched processor).
    """
    for seed in SEEDS[:6]:
        for num_tasks, num_procs in ((14, 5), (18, 8)):
            inst = make_instance(seed, num_tasks=num_tasks, num_procs=num_procs)
            for algo in ("ftsa", "ftbar", "caft"):
                for epsilon in (0, 1):
                    slow = ALGORITHMS[algo](inst, epsilon, model, False)
                    fast = ALGORITHMS[algo](inst, epsilon, model, True)
                    assert commit_signature(slow) == commit_signature(fast), (
                        f"{algo} model={model} seed={seed} eps={epsilon} "
                        f"v={num_tasks} m={num_procs}"
                    )


def test_filtered_pools_do_not_alias_entry_cache():
    """Same-length but different source pools must not hit a stale cache.

    Only canonical full-fan-in pools (the live ``schedule.replicas``
    lists) are cacheable; an arbitrary filtered pool of equal length is
    evaluated fresh.
    """
    from repro.schedulers.base import make_builder

    inst = make_instance(0)
    graph = inst.graph
    task = next(t for t in graph.topological_order() if len(graph.preds(t)) == 1)
    pred = graph.preds(task)[0]

    def run(fast):
        builder = make_builder(inst, 1, "oneport", "t", fast=fast)
        for t in graph.topological_order():
            if t == task:
                break
            for proc in (0, 1):
                builder.commit(
                    t, proc, {p: builder.schedule.replicas[p] for p in graph.preds(t)}
                )
        reps = builder.schedule.replicas[pred]
        first = builder.trial_batch(task, [2, 3], {pred: [reps[0]]})
        second = builder.trial_batch(task, [2, 3], {pred: [reps[1]]})
        return [(t.start, t.finish) for t in first + second]

    assert run(True) == run(False)


def test_unsupported_model_falls_back():
    """Insertion policy is outside the kernel: fast=True must still work."""
    from repro.comm.oneport import OnePortNetwork

    inst = make_instance(0)
    net = OnePortNetwork(inst.platform, policy="insertion")
    sched = ftsa(inst, 1, model=net, rng=0, fast=True)
    net2 = OnePortNetwork(inst.platform, policy="insertion")
    ref = ftsa(inst, 1, model=net2, rng=0, fast=False)
    assert commit_signature(sched) == commit_signature(ref)
