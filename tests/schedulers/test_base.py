"""Tests for shared list-scheduling machinery."""

import numpy as np
import pytest

from repro.comm.macrodataflow import MacroDataflowNetwork
from repro.comm.oneport import OnePortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.dag.generators import chain, fork
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.platform.topology import Topology
from repro.schedule.schedule import Trial
from repro.schedulers.base import (
    FreeTaskList,
    argmin_trial,
    eligible_procs,
    full_fanin_sources,
    make_builder,
    resolve_network,
)
from repro.utils.errors import SchedulingError
from tests.conftest import make_instance


class TestResolveNetwork:
    def test_by_name(self):
        inst = make_instance()
        net, factory = resolve_network("oneport", inst)
        assert isinstance(net, OnePortNetwork)
        fresh = factory()
        assert isinstance(fresh, OnePortNetwork)
        assert fresh is not net

    def test_by_instance(self):
        inst = make_instance()
        net = MacroDataflowNetwork(inst.platform)
        resolved, factory = resolve_network(net, inst)
        assert resolved is net
        assert isinstance(factory(), MacroDataflowNetwork)

    def test_instance_is_reset(self):
        inst = make_instance()
        net = OnePortNetwork(inst.platform)
        net.place_transfer(0, 1, 0.0, 10.0)
        resolved, _ = resolve_network(net, inst)
        assert resolved.send_free(0) == 0.0

    def test_routed_factory_keeps_topology(self):
        topo = Topology.ring(5)
        inst = make_instance(num_procs=5)
        net = RoutedOnePortNetwork(topo)
        _resolved, factory = resolve_network(net, inst)
        fresh = factory()
        assert fresh.topology is topo

    def test_insertion_policy_preserved(self):
        inst = make_instance()
        net = OnePortNetwork(inst.platform, policy="insertion")
        _resolved, factory = resolve_network(net, inst)
        assert factory().policy == "insertion"

    def test_subclass_keeps_policy(self):
        """Clone dispatch goes through the class, not a name string: a
        OnePortNetwork subclass rebuilds with its policy intact."""

        class TracingOnePort(OnePortNetwork):
            name = "tracing-oneport"

        inst = make_instance()
        net = TracingOnePort(inst.platform, policy="insertion")
        _resolved, factory = resolve_network(net, inst)
        fresh = factory()
        assert type(fresh) is TracingOnePort
        assert fresh.policy == "insertion"


class TestFreeTaskList:
    def instance(self):
        graph = chain(3, volume=10.0)
        platform = Platform.homogeneous(2, unit_delay=1.0)
        E = np.full((3, 2), 5.0)
        return ProblemInstance(graph, platform, E)

    def test_initial_free_tasks_are_entries(self):
        inst = make_instance()
        free = FreeTaskList(inst, np.random.default_rng(0))
        for t in free.free_tasks():
            assert inst.graph.in_degree(t) == 0

    def test_tasks_become_free_when_preds_done(self):
        inst = self.instance()
        free = FreeTaskList(inst, np.random.default_rng(0))
        assert free.free_tasks() == [0]
        freed = free.task_scheduled(0, best_finish=5.0)
        assert freed == [1]

    def test_dynamic_top_level_uses_actual_finish(self):
        inst = self.instance()
        free = FreeTaskList(inst, np.random.default_rng(0), dynamic=True)
        free.task_scheduled(0, best_finish=42.0)
        # tl(t1) = 42 + mean edge weight (10 * 1.0) = 52
        assert free.tl[1] == pytest.approx(52.0)

    def test_static_top_level_uses_mean_costs(self):
        inst = self.instance()
        free = FreeTaskList(inst, np.random.default_rng(0), dynamic=False)
        free.task_scheduled(0, best_finish=42.0)
        # tl(t1) = tl(t0) + mean exec (5) + mean edge (10) = 15
        assert free.tl[1] == pytest.approx(15.0)

    def test_bl_priority_matches_analysis(self):
        from repro.dag.analysis import bottom_levels

        inst = make_instance()
        free = FreeTaskList(inst, np.random.default_rng(0), priority="bl")
        assert np.allclose(free.bl, bottom_levels(inst))

    def test_pop_specific(self):
        inst = ProblemInstance(
            fork(2, volume=1.0),
            Platform.homogeneous(2),
            np.full((3, 2), 1.0),
        )
        free = FreeTaskList(inst, np.random.default_rng(0))
        free.task_scheduled(0, 1.0)
        free.pop_specific(0 + 2)  # t2 is free now
        assert 2 not in free.queue

    def test_pop_specific_rejects_unfree(self):
        inst = self.instance()
        free = FreeTaskList(inst, np.random.default_rng(0))
        with pytest.raises(SchedulingError):
            free.pop_specific(2)

    def test_unknown_priority(self):
        inst = self.instance()
        with pytest.raises(SchedulingError):
            FreeTaskList(inst, np.random.default_rng(0), priority="alphabetical")

    def test_exhaustion(self):
        inst = self.instance()
        free = FreeTaskList(inst, np.random.default_rng(0))
        order = []
        while free:
            t = free.pop()
            order.append(t)
            free.task_scheduled(t, best_finish=1.0)
        assert order == [0, 1, 2]


class TestArgminTrial:
    def trial(self, proc, finish):
        return Trial(task=0, proc=proc, start=0.0, finish=finish, data_ready=0.0)

    def test_picks_min_finish(self):
        trials = [self.trial(0, 5.0), self.trial(1, 3.0), self.trial(2, 9.0)]
        assert argmin_trial(trials, np.random.default_rng(0)).proc == 1

    def test_tie_break_seeded(self):
        trials = [self.trial(p, 3.0) for p in range(10)]
        picks = {argmin_trial(trials, np.random.default_rng(s)).proc for s in range(20)}
        assert len(picks) > 1  # ties genuinely randomized
        a = argmin_trial(trials, np.random.default_rng(7)).proc
        b = argmin_trial(trials, np.random.default_rng(7)).proc
        assert a == b  # but reproducible

    def test_empty_raises(self):
        with pytest.raises(SchedulingError):
            argmin_trial([], np.random.default_rng(0))


class TestHelpers:
    def test_full_fanin_sources(self):
        inst = make_instance()
        builder = make_builder(inst, 1, "oneport", "test")
        t = inst.graph.topological_order()[0]
        assert full_fanin_sources(builder, t) == {}

    def test_eligible_procs_shrink(self):
        inst = make_instance(num_procs=4)
        builder = make_builder(inst, 1, "oneport", "test")
        entry = inst.graph.entry_tasks[0]
        assert eligible_procs(builder, entry) == [0, 1, 2, 3]
        builder.commit(entry, 2, {})
        assert eligible_procs(builder, entry) == [0, 1, 3]
