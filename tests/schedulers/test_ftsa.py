"""Tests for FTSA."""

import numpy as np
import pytest

from repro.dag.generators import chain
from repro.fault.scenarios import check_robustness
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedule.metrics import message_bound_ftsa
from repro.schedule.validation import validate_schedule
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from tests.conftest import make_instance


class TestReplication:
    def test_replica_count(self, epsilon):
        inst = make_instance()
        sched = ftsa(inst, epsilon, rng=0)
        assert all(len(reps) == epsilon + 1 for reps in sched.replicas)
        validate_schedule(sched)

    def test_distinct_processors(self, epsilon):
        inst = make_instance()
        sched = ftsa(inst, epsilon, rng=0)
        for reps in sched.replicas:
            procs = [r.proc for r in reps]
            assert len(set(procs)) == len(procs)

    def test_eps0_matches_heft_variant(self):
        """FTSA with ε=0 is HEFT with the tl+bl dynamic priority."""
        inst = make_instance()
        a = ftsa(inst, 0, rng=3)
        b = heft(inst, priority="tl+bl", dynamic=True, rng=3)
        assert a.latency() == pytest.approx(b.latency())
        assert a.message_count() == b.message_count()

    def test_message_bound(self, epsilon):
        inst = make_instance()
        sched = ftsa(inst, epsilon, rng=0)
        assert sched.message_count() <= message_bound_ftsa(sched)

    def test_latency_grows_with_epsilon(self):
        inst = make_instance(num_tasks=30, num_procs=6)
        lat = [ftsa(inst, eps, rng=0).latency() for eps in (0, 1, 2)]
        assert lat[0] <= lat[1] <= lat[2] * 1.2  # weakly increasing (mild slack)

    def test_robust_to_any_epsilon_failures(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        for eps in (1, 2):
            sched = ftsa(inst, eps, rng=1)
            report = check_robustness(sched)
            assert report.robust, report.violations[:3]

    def test_too_few_processors_rejected(self):
        from repro.utils.errors import SchedulingError

        inst = make_instance(num_procs=3)
        with pytest.raises(SchedulingError):
            ftsa(inst, epsilon=3)


class TestChainBehaviour:
    def test_chain_replicas_pairwise(self):
        """ε=1 chain: two disjoint copies when comms dominate."""
        graph = chain(3, volume=1000.0)
        platform = Platform.homogeneous(4, unit_delay=1.0)
        E = np.full((3, 4), 1.0)
        inst = ProblemInstance(graph, platform, E)
        sched = ftsa(inst, 1, rng=0)
        # with enormous comm costs each replica chain stays processor-local
        assert sched.message_count() == 0
        assert sched.latency() == pytest.approx(3.0)

    def test_models_run(self):
        inst = make_instance()
        for model in ("oneport", "macro-dataflow", "uniport"):
            sched = ftsa(inst, 1, model=model, rng=0)
            assert sched.latency() > 0

    def test_contention_hurts(self):
        """One-port latency dominates macro-dataflow latency on fine grain."""
        inst = make_instance(num_tasks=40, num_procs=5, granularity=0.2, seed=11)
        one = ftsa(inst, 2, model="oneport", rng=0).latency()
        macro = ftsa(inst, 2, model="macro-dataflow", rng=0).latency()
        assert one >= macro


class TestReselect:
    def test_reselect_valid_and_robust(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = ftsa(inst, 1, reselect=True, rng=0)
        validate_schedule(sched)
        assert check_robustness(sched).robust

    def test_reselect_helps_at_fine_grain(self):
        """Re-picking after each commit reacts to the ports the earlier
        replicas just filled; in the contention-dominated regime it beats
        the paper's single pass clearly on average (EXPERIMENTS.md,
        Finding 2)."""
        import numpy as np

        single, re = [], []
        for seed in range(6):
            inst = make_instance(num_tasks=40, num_procs=8, granularity=0.2, seed=seed)
            single.append(ftsa(inst, 2, rng=seed).latency())
            re.append(ftsa(inst, 2, reselect=True, rng=seed).latency())
        assert np.mean(re) < np.mean(single)

    def test_single_pass_takes_distinct_procs(self):
        inst = make_instance()
        sched = ftsa(inst, 3, rng=0)
        for reps in sched.replicas:
            assert len({r.proc for r in reps}) == 4
