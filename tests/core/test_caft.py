"""Tests for the CAFT scheduler (Algorithm 5.1)."""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.dag.generators import chain, fork, out_tree, random_out_forest
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedule.metrics import message_bound_ftsa, message_bound_one_to_one
from repro.schedule.validation import validate_schedule
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.errors import SchedulingError
from tests.conftest import make_instance


class TestReplication:
    @pytest.mark.parametrize("locking", ["support", "paper"])
    def test_replica_count(self, epsilon, locking):
        inst = make_instance()
        sched = caft(inst, epsilon, locking=locking, rng=0)
        assert all(len(reps) == epsilon + 1 for reps in sched.replicas)
        validate_schedule(sched)

    def test_deterministic(self):
        inst = make_instance()
        assert caft(inst, 1, rng=4).latency() == caft(inst, 1, rng=4).latency()

    def test_unknown_locking_rejected(self):
        inst = make_instance()
        with pytest.raises(SchedulingError, match="locking"):
            caft(inst, 1, locking="bogus")

    def test_metadata_counts(self):
        inst = make_instance()
        sched = caft(inst, 1, rng=0)
        md = sched.metadata
        total = sum(len(reps) for reps in sched.replicas)
        assert md["channel_replicas"] + md["greedy_replicas"] == total
        assert len(md["theta_per_task"]) == inst.num_tasks
        assert md["locking"] == "support"

    def test_mixed_replicas_counted_as_greedy_stat(self):
        inst = make_instance(num_tasks=30, num_procs=5)
        sched = caft(inst, 2, rng=0)
        kinds = {r.kind for reps in sched.replicas for r in reps}
        assert kinds <= {"channel", "mixed", "greedy"}


class TestHeftReduction:
    def test_eps0_equals_heft(self):
        """Paper §6: the fault-free version of CAFT reduces to HEFT."""
        inst = make_instance(num_tasks=30, num_procs=6, seed=2)
        a = caft(inst, 0, rng=9)
        b = heft(inst, priority="tl+bl", dynamic=True, rng=9)
        assert a.latency() == pytest.approx(b.latency())
        assert a.message_count() == b.message_count()
        for ra, rb in zip(a.all_replicas(), b.all_replicas()):
            assert (ra.task, ra.proc, ra.start) == (rb.task, rb.proc, rb.start)

    def test_eps0_single_replicas(self):
        inst = make_instance()
        sched = caft(inst, 0, rng=0)
        validate_schedule(sched, expected_replicas=1)


class TestMessageReduction:
    def test_out_forest_prop51_paper(self):
        """Proposition 5.1: at most e(ε+1) messages on out-forests.

        The literal algorithm guarantees the bound (singleton analysis gives
        θ = ε+1 on in-degree-1 graphs whenever the platform is large enough).
        """
        for seed in range(4):
            graph = random_out_forest(30, rng=seed)
            platform = Platform.homogeneous(8, unit_delay=1.0)
            E = np.full((30, 8), 50.0)
            inst = ProblemInstance(graph, platform, E)
            for eps in (1, 2):
                sched = caft(inst, eps, locking="paper", rng=seed)
                assert sched.message_count() <= message_bound_one_to_one(sched)

    def test_out_forest_near_bound_support(self):
        """The robust variant may exceed e(ε+1) on out-forests when a
        cross-pairing forces a fan-in replica, but stays close to it and far
        below the FTSA bound."""
        for seed in range(4):
            graph = random_out_forest(30, rng=seed)
            platform = Platform.homogeneous(8, unit_delay=1.0)
            E = np.full((30, 8), 50.0)
            inst = ProblemInstance(graph, platform, E)
            for eps in (1, 2):
                sched = caft(inst, eps, rng=seed)
                bound = message_bound_one_to_one(sched)
                assert sched.message_count() <= bound + graph.num_edges * eps
                assert sched.message_count() < message_bound_ftsa(sched)

    def test_fork_prop51(self):
        graph = fork(6, volume=10.0)
        platform = Platform.homogeneous(8, unit_delay=1.0)
        E = np.full((7, 8), 50.0)
        inst = ProblemInstance(graph, platform, E)
        sched = caft(inst, 1, rng=0)
        assert sched.message_count() <= graph.num_edges * 2

    def test_fewer_messages_than_ftsa_bound(self, epsilon):
        inst = make_instance(num_tasks=40, num_procs=8)
        sched = caft(inst, epsilon, rng=0)
        assert sched.message_count() < message_bound_ftsa(sched)

    def test_beats_ftsa_on_messages(self):
        """§6: CAFT drastically reduces message counts vs FTSA."""
        inst = make_instance(num_tasks=50, num_procs=10, granularity=0.5, seed=5)
        c = caft(inst, 1, rng=0).message_count()
        f = ftsa(inst, 1, rng=0).message_count()
        assert c < f

    def test_out_tree_mostly_channels(self):
        """On an out-tree with plenty of processors almost every replica is a
        one-to-one channel (occasional cross-pairings may demote a unit)."""
        wl = out_tree(2, branching=2, volume=10.0)
        platform = Platform.homogeneous(10, unit_delay=1.0)
        E = np.full((wl.num_tasks, 10), 50.0)
        inst = ProblemInstance(wl, platform, E)
        sched = caft(inst, 1, rng=0)
        total = sum(len(reps) for reps in sched.replicas)
        assert sched.metadata["channel_replicas"] >= total - 2
        # the literal algorithm stays fully one-to-one here
        paper = caft(inst, 1, locking="paper", rng=0)
        assert paper.metadata["greedy_replicas"] == 0


class TestLatency:
    def test_beats_or_matches_ftsa_at_eps1(self):
        """§6 headline: CAFT outperforms FTSA (fine grain, ε=1)."""
        wins = 0
        for seed in range(5):
            inst = make_instance(num_tasks=60, num_procs=10, granularity=0.4, seed=seed)
            c = caft(inst, 1, rng=seed).latency()
            f = ftsa(inst, 1, rng=seed).latency()
            wins += c <= f
        assert wins >= 4

    def test_latency_increases_with_epsilon(self):
        inst = make_instance(num_tasks=40, num_procs=10)
        l0 = caft(inst, 0, rng=0).latency()
        l2 = caft(inst, 2, rng=0).latency()
        assert l2 >= l0

    def test_models_run(self):
        inst = make_instance()
        for model in ("oneport", "macro-dataflow", "uniport", "oneport-nooverlap"):
            assert caft(inst, 1, model=model, rng=0).latency() > 0


class TestSupportInvariants:
    def test_supports_pairwise_disjoint(self):
        """The invariant behind Proposition 5.2 for the robust variant."""
        inst = make_instance(num_tasks=30, num_procs=8)
        for eps in (1, 2, 3):
            sched = caft(inst, eps, rng=0)
            for reps in sched.replicas:
                for i, a in enumerate(reps):
                    for b in reps[i + 1:]:
                        assert not (a.support & b.support), (a, b)

    def test_own_proc_in_support(self):
        inst = make_instance()
        sched = caft(inst, 2, rng=0)
        for reps in sched.replicas:
            for r in reps:
                assert r.proc in r.support

    def test_channel_support_includes_suppliers(self):
        inst = make_instance(num_tasks=25, num_procs=8)
        sched = caft(inst, 1, rng=0)
        for reps in sched.replicas:
            for r in reps:
                if r.kind == "channel":
                    for evs in r.inputs.values():
                        for e in evs:
                            assert e.src_replica.support <= r.support
                    for local in r.local_inputs.values():
                        assert local.support <= r.support

    def test_paper_locking_has_no_disjointness_guarantee(self):
        """Contrast: the literal algorithm can produce overlapping supports
        (that is exactly why Prop. 5.2 fails for it — see
        tests/fault/test_robustness.py)."""
        overlapping = 0
        for seed in range(6):
            inst = make_instance(num_tasks=40, num_procs=6, seed=seed)
            sched = caft(inst, 1, locking="paper", rng=seed)
            for reps in sched.replicas:
                a, b = reps
                if a.support & b.support:
                    overlapping += 1
        assert overlapping > 0
