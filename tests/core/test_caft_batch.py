"""Tests for the batched CAFT extension (§7 further work)."""

import pytest

from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.fault.scenarios import check_robustness
from repro.schedule.validation import validate_schedule
from repro.utils.errors import SchedulingError
from tests.conftest import make_instance


class TestBasics:
    def test_replica_count(self, epsilon):
        inst = make_instance()
        sched = caft_batch(inst, epsilon, window=4, rng=0)
        assert all(len(reps) == epsilon + 1 for reps in sched.replicas)
        validate_schedule(sched)

    def test_window_one_equals_caft(self):
        inst = make_instance(num_tasks=30, num_procs=6, seed=5)
        a = caft_batch(inst, 1, window=1, rng=7)
        b = caft(inst, 1, rng=7)
        assert a.latency() == pytest.approx(b.latency())
        assert a.message_count() == b.message_count()
        for ra, rb in zip(a.all_replicas(), b.all_replicas()):
            assert (ra.task, ra.proc, ra.start) == (rb.task, rb.proc, rb.start)

    def test_deterministic(self):
        inst = make_instance()
        assert (
            caft_batch(inst, 1, window=5, rng=3).latency()
            == caft_batch(inst, 1, window=5, rng=3).latency()
        )

    def test_bad_window(self):
        inst = make_instance()
        with pytest.raises(SchedulingError):
            caft_batch(inst, 1, window=0)

    def test_metadata(self):
        inst = make_instance()
        sched = caft_batch(inst, 1, window=6, rng=0)
        assert sched.metadata["window"] == 6
        assert len(sched.metadata["theta_per_task"]) == inst.num_tasks
        assert sched.scheduler == "caft-batch6"


class TestRobustness:
    """The batched variant keeps the support-locking guarantee verbatim."""

    @pytest.mark.parametrize("window", [2, 4, 10])
    def test_exhaustive_robustness(self, window):
        for seed in range(3):
            inst = make_instance(num_tasks=18, num_procs=5, seed=seed)
            sched = caft_batch(inst, 1, window=window, rng=seed)
            assert check_robustness(sched).robust

    def test_supports_stay_disjoint(self):
        inst = make_instance(num_tasks=25, num_procs=7)
        sched = caft_batch(inst, 2, window=5, rng=0)
        for reps in sched.replicas:
            for i, a in enumerate(reps):
                for b in reps[i + 1:]:
                    assert not (a.support & b.support)


class TestBatchingEffect:
    def test_runs_across_windows(self):
        inst = make_instance(num_tasks=40, num_procs=8, granularity=0.5, seed=2)
        lats = {w: caft_batch(inst, 1, window=w, rng=0).latency() for w in (1, 4, 10)}
        # no strict ordering is guaranteed; all must be valid & positive
        assert all(v > 0 for v in lats.values())

    def test_topological_order_respected(self):
        inst = make_instance(num_tasks=30)
        sched = caft_batch(inst, 1, window=8, rng=0)
        pos = {t: i for i, t in enumerate(sched.task_order)}
        for u, v, _ in inst.graph.edges():
            assert pos[u] < pos[v]
