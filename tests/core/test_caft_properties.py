"""Deeper CAFT behaviour tests: θ accounting, workloads, regime behaviour."""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.dag.workloads import gaussian_elimination, stencil_1d, tiled_cholesky
from repro.fault.scenarios import check_robustness
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.schedule.validation import validate_schedule
from tests.conftest import make_instance


class TestThetaAccounting:
    def test_theta_matches_channel_count(self):
        """θ per task counts exactly the replicas committed as channels."""
        inst = make_instance(num_tasks=30, num_procs=8)
        sched = caft(inst, 2, rng=0)
        thetas = sched.metadata["theta_per_task"]
        # thetas are recorded in scheduling order; map back through task_order
        by_task = dict(zip(sched.task_order, thetas))
        for t, reps in enumerate(sched.replicas):
            channels = sum(1 for r in reps if r.kind == "channel")
            assert by_task[t] == channels

    def test_theta_bounded_by_eps_plus_one(self):
        inst = make_instance(num_tasks=25, num_procs=8)
        for eps in (0, 1, 2):
            sched = caft(inst, eps, rng=0)
            assert all(0 <= t <= eps + 1 for t in sched.metadata["theta_per_task"])

    def test_entry_tasks_always_full_theta(self):
        """Entry tasks have no suppliers, so every unit is a channel."""
        inst = make_instance(num_tasks=25, num_procs=8)
        sched = caft(inst, 1, rng=0)
        by_task = dict(zip(sched.task_order, sched.metadata["theta_per_task"]))
        for t in inst.graph.entry_tasks:
            assert by_task[t] == 2

    def test_more_processors_more_channels(self):
        """Channel fraction grows with platform slack (fixed workload)."""
        fractions = []
        for m in (5, 10, 20):
            inst = make_instance(num_tasks=40, num_procs=m, seed=6)
            sched = caft(inst, 2, rng=0)
            total = sum(len(r) for r in sched.replicas)
            fractions.append(sched.metadata["channel_replicas"] / total)
        assert fractions[-1] >= fractions[0]


class TestWorkloads:
    @pytest.mark.parametrize(
        "workload",
        [gaussian_elimination(6), stencil_1d(6, 4), tiled_cholesky(4)],
        ids=["gauss", "stencil", "cholesky"],
    )
    @pytest.mark.parametrize("eps", [1, 2])
    def test_caft_on_structured_workloads(self, workload, eps):
        platform = uniform_delay_platform(8, rng=1)
        E = range_exec_matrix(workload.base_costs, 8, rng=2)
        E = scale_to_granularity(workload.graph, platform, E, 1.0)
        inst = ProblemInstance(workload.graph, platform, E)
        sched = caft(inst, eps, rng=0)
        validate_schedule(sched)
        assert check_robustness(sched, max_failures=min(eps, 2)).robust


class TestRegimes:
    def test_saturated_platform_runs(self):
        """eps+1 == m: every processor hosts a replica of every task."""
        inst = make_instance(num_tasks=12, num_procs=4, seed=3)
        sched = caft(inst, 3, rng=0)
        validate_schedule(sched)
        for reps in sched.replicas:
            assert {r.proc for r in reps} == {0, 1, 2, 3}

    def test_saturated_platform_still_robust(self):
        inst = make_instance(num_tasks=10, num_procs=4, seed=5)
        sched = caft(inst, 3, rng=0)
        assert check_robustness(sched).robust

    def test_very_fine_grain(self):
        inst = make_instance(num_tasks=30, num_procs=6, granularity=0.05, seed=9)
        sched = caft(inst, 1, rng=0)
        validate_schedule(sched)
        assert check_robustness(sched).robust

    def test_very_coarse_grain(self):
        inst = make_instance(num_tasks=30, num_procs=6, granularity=50.0, seed=9)
        sched = caft(inst, 1, rng=0)
        validate_schedule(sched)
        # at coarse grain the fault-free latency dominates: overhead small
        base = caft(inst, 0, rng=0).latency()
        assert sched.latency() <= 3.0 * base

    def test_wide_independent_graph(self):
        """A graph of isolated tasks: pure load balancing, no messages."""
        from repro.dag.graph import TaskGraph
        from repro.platform.platform import Platform

        graph = TaskGraph(12, [])
        platform = Platform.homogeneous(4, unit_delay=1.0)
        E = np.full((12, 4), 5.0)
        inst = ProblemInstance(graph, platform, E)
        sched = caft(inst, 1, rng=0)
        assert sched.message_count() == 0
        # 24 replicas over 4 procs, 5s each => makespan 30
        assert sched.makespan() == pytest.approx(30.0)

    def test_single_task_graph(self):
        from repro.dag.graph import TaskGraph
        from repro.platform.platform import Platform

        graph = TaskGraph(1, [])
        platform = Platform.homogeneous(3, unit_delay=1.0)
        E = np.array([[2.0, 3.0, 4.0]])
        inst = ProblemInstance(graph, platform, E)
        sched = caft(inst, 2, rng=0)
        assert len(sched.replicas[0]) == 3
        assert sched.latency() == pytest.approx(2.0)  # fastest replica
