"""Unit tests for the one-to-one mapping machinery (Algorithm 5.2)."""

import numpy as np
import pytest

from repro.comm.oneport import OnePortNetwork
from repro.core.one_to_one import (
    PlacementState,
    _pick_heads,
    greedy_round,
    one_to_one_round,
    singleton_analysis,
    support_pools,
    support_round,
)
from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedule.schedule import ScheduleBuilder
from repro.utils.errors import SchedulingError


def builder_for(graph, m=6, epsilon=1, exec_time=5.0):
    platform = Platform.homogeneous(m, unit_delay=1.0)
    E = np.full((graph.num_tasks, m), exec_time)
    inst = ProblemInstance(graph, platform, E)
    return ScheduleBuilder(inst, OnePortNetwork(platform), epsilon, "test")


def join2() -> TaskGraph:
    """t0, t1 -> t2."""
    return TaskGraph(3, [(0, 2, 10.0), (1, 2, 10.0)])


class TestSingletonAnalysis:
    def test_all_singletons(self):
        b = builder_for(join2(), epsilon=1)
        r0a = b.commit(0, 0, {})
        r0b = b.commit(0, 1, {})
        r1a = b.commit(1, 2, {})
        r1b = b.commit(1, 3, {})
        state = singleton_analysis(b, 2)
        assert state.theta == 2
        assert [r.proc for r in state.pools[0]] == [0, 1]
        assert [r.proc for r in state.pools[1]] == [2, 3]

    def test_shared_processor_breaks_singleton(self):
        """The paper's example: replicas of different predecessors sharing a
        processor make it non-singleton and reduce θ."""
        b = builder_for(join2(), epsilon=1)
        b.commit(0, 0, {})
        b.commit(0, 1, {})
        b.commit(1, 0, {})  # shares P0 with t0's first replica
        b.commit(1, 3, {})
        state = singleton_analysis(b, 2)
        # P0 hosts two replicas -> only P1 (t0) and P3 (t1) are singletons
        assert state.theta == 1
        assert [r.proc for r in state.pools[0]] == [1]
        assert [r.proc for r in state.pools[1]] == [3]

    def test_paper_worked_example_theta_zero(self):
        """§5 example: ε=1, t1/t2/t3 pairwise sharing P1, P2, P3 — no
        singleton processor at all, θ = 0."""
        graph = TaskGraph(4, [(0, 3, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
        b = builder_for(graph, m=6, epsilon=1)
        b.commit(0, 0, {})  # t1^(1) on P1 (index 0)
        b.commit(1, 0, {})  # t2^(1) on P1  -- wait: space exclusion is per
        # task, two different tasks may share a processor
        b.commit(0, 1, {})
        b.commit(2, 1, {})
        b.commit(1, 2, {})
        b.commit(2, 2, {})
        state = singleton_analysis(b, 3)
        assert state.theta == 0

    def test_entry_task(self):
        b = builder_for(join2(), epsilon=2)
        state = singleton_analysis(b, 0)
        assert state.theta == 3
        assert state.pools == {}


class TestSupportPools:
    def test_locked_support_excluded(self):
        b = builder_for(join2(), epsilon=1)
        r0a = b.commit(0, 0, {}, support=frozenset({0}))
        r0b = b.commit(0, 1, {}, support=frozenset({1, 4}))
        pools = support_pools(b, 2, locked={4})
        assert pools[0] == [r0a]  # r0b's support intersects the lock

    def test_empty_pool_omitted(self):
        b = builder_for(join2(), epsilon=1)
        b.commit(0, 0, {}, support=frozenset({0}))
        b.commit(0, 1, {}, support=frozenset({1}))
        b.commit(1, 2, {}, support=frozenset({2}))
        b.commit(1, 3, {}, support=frozenset({3}))
        pools = support_pools(b, 2, locked={0, 1})
        assert 0 not in pools  # both t0 suppliers blocked
        assert len(pools[1]) == 2


class TestPickHeads:
    def test_prefers_earliest_sender_bound(self):
        b = builder_for(join2(), m=4, epsilon=1)
        early = b.commit(0, 0, {})
        b.proc_ready[1] = 100.0  # make the second replica late
        late = b.commit(0, 1, {})
        heads = _pick_heads(b, 2, 3, {0: [early, late]})
        assert heads[0] is early

    def test_local_replica_wins(self):
        b = builder_for(join2(), m=4, epsilon=1)
        remote = b.commit(0, 0, {})
        b.proc_ready[1] = 6.0
        local = b.commit(0, 1, {})  # finishes later but is local to P1
        heads = _pick_heads(b, 2, 1, {0: [remote, local]})
        # local supply: ready at finish (11) vs remote arrival 5 + 10 = 15
        assert heads[0] is local


class TestRounds:
    def place_preds(self, b):
        return (
            b.commit(0, 0, {}),
            b.commit(0, 1, {}),
            b.commit(1, 2, {}),
            b.commit(1, 3, {}),
        )

    def test_one_to_one_locks_eq7(self):
        b = builder_for(join2(), epsilon=1)
        self.place_preds(b)
        state = singleton_analysis(b, 2)
        gen = np.random.default_rng(0)
        replica = one_to_one_round(b, 2, state, gen)
        assert replica is not None and replica.kind == "channel"
        # eq. (7): the chosen processor and both head processors are locked
        assert replica.proc in state.locked
        used_head_procs = {e.src_proc for evs in replica.inputs.values() for e in evs}
        used_head_procs |= {r.proc for r in replica.local_inputs.values()}
        assert used_head_procs <= state.locked
        # heads were consumed from the pools
        assert all(len(pool) == 1 for pool in state.pools.values())

    def test_one_to_one_exhausted_returns_none(self):
        b = builder_for(join2(), epsilon=1)
        self.place_preds(b)
        state = singleton_analysis(b, 2)
        state.locked = set(range(6))  # everything locked
        assert one_to_one_round(b, 2, state, np.random.default_rng(0)) is None

    def test_greedy_round_full_fanin(self):
        b = builder_for(join2(), epsilon=1)
        self.place_preds(b)
        state = PlacementState(locked=set(), pools={}, theta=0)
        replica = greedy_round(b, 2, state, np.random.default_rng(0))
        assert replica.kind == "greedy"
        # receives from both replicas of each predecessor (or local copies)
        for pred in (0, 1):
            supplies = len(replica.inputs.get(pred, ())) + (
                1 if pred in replica.local_inputs else 0
            )
            assert supplies >= 1
        assert replica.proc in state.locked

    def test_greedy_round_degraded_fallback(self):
        b = builder_for(join2(), epsilon=1)
        self.place_preds(b)
        state = PlacementState(locked=set(range(6)), pools={}, theta=0)
        replica = greedy_round(b, 2, state, np.random.default_rng(0))
        assert state.degraded == 1
        assert replica.proc in range(6)

    def test_support_round_mixed_kind(self):
        """When one predecessor has no eligible supplier the round degrades
        to fan-in for that predecessor only."""
        b = builder_for(join2(), epsilon=1)
        r0a = b.commit(0, 0, {}, support=frozenset({0, 5}))
        r0b = b.commit(0, 1, {}, support=frozenset({1, 4}))
        b.commit(1, 2, {})
        b.commit(1, 3, {})
        state = PlacementState(locked={4, 5}, pools={}, theta=2)
        state.pools = support_pools(b, 2, state.locked)
        assert 0 not in state.pools  # both t0 suppliers blocked by the lock
        gen = np.random.default_rng(0)
        replica = support_round(b, 2, state, gen, remaining_after=0)
        assert replica.kind == "mixed"
        assert len(replica.inputs.get(0, ())) + len(replica.local_inputs) >= 2

    def test_support_round_raises_when_no_processor(self):
        b = builder_for(join2(), epsilon=1)
        self.place_preds(b)
        state = PlacementState(locked=set(range(6)), pools={}, theta=0)
        with pytest.raises(SchedulingError, match="no feasible processor"):
            support_round(b, 2, state, np.random.default_rng(0), remaining_after=0)
