"""Tests for macro-dataflow, routed models, and the factory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import make_network
from repro.comm.macrodataflow import MacroDataflowNetwork
from repro.comm.oneport import OnePortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.platform.platform import Platform
from repro.platform.topology import Topology


class TestMacroDataflow:
    @pytest.fixture
    def net(self):
        return MacroDataflowNetwork(Platform.homogeneous(4, unit_delay=1.0))

    def test_no_contention(self, net):
        for _ in range(10):
            start, finish = net.place_transfer(0, 1, 0.0, 10.0)
            assert (start, finish) == (0.0, 10.0)

    def test_sender_bound_matches(self, net):
        assert net.sender_bound(0, 1, 5.0, 10.0) == 15.0

    def test_undo_is_noop(self, net):
        token = net.checkpoint()
        net.place_transfer(0, 1, 0.0, 10.0)
        net.rollback(token)
        net.commit()
        net.reset()  # nothing raises

    def test_local_free(self, net):
        assert net.place_transfer(1, 1, 4.0, 50.0) == (4.0, 4.0)


class TestRouted:
    @pytest.fixture
    def net(self):
        # line 0-1-2-3 with unit delays
        return RoutedOnePortNetwork(Topology.line(4, delay=1.0))

    def test_effective_delay(self, net):
        # route 0->3 crosses 3 links, so W = 3 * volume
        start, finish = net.place_transfer(0, 3, 0.0, 10.0)
        assert (start, finish) == (0.0, 30.0)

    def test_route_contention(self, net):
        net.place_transfer(0, 3, 0.0, 10.0)  # holds links (0,1),(1,2),(2,3)
        start, _ = net.place_transfer(1, 2, 0.0, 10.0)  # needs (1,2)
        assert start == 30.0

    def test_direction_independence(self, net):
        """Full duplex: opposite directions of a link don't contend."""
        net.place_transfer(0, 2, 0.0, 10.0)
        start, _ = net.place_transfer(2, 0, 0.0, 10.0)
        assert start == 0.0

    def test_disjoint_routes_parallel(self):
        net = RoutedOnePortNetwork(Topology.mesh2d(2, 2))
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(2, 3, 0.0, 10.0)
        assert start == 0.0

    def test_endpoint_ports(self, net):
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(0, 3, 0.0, 10.0)  # P0's send port busy
        assert start == 10.0

    def test_rollback(self, net):
        token = net.checkpoint()
        net.place_transfer(0, 3, 0.0, 10.0)
        net.rollback(token)
        start, _ = net.place_transfer(1, 2, 0.0, 10.0)
        assert start == 0.0

    def test_reset(self, net):
        net.place_transfer(0, 3, 0.0, 10.0)
        net.reset()
        start, _ = net.place_transfer(1, 2, 0.0, 5.0)
        assert start == 0.0

    def test_sender_bound_ignores_receiver(self, net):
        net.place_transfer(2, 3, 0.0, 10.0)  # busies P3 recv + link (2,3)
        # 0 -> 1 shares nothing with that transfer
        assert net.sender_bound(0, 1, 0.0, 5.0) == 5.0

    def test_local_transfer(self, net):
        assert net.place_transfer(2, 2, 9.0, 10.0) == (9.0, 9.0)

    def test_platform_matches_topology(self, net):
        assert net.platform.delay(0, 3) == 3.0


class TestFactory:
    def test_all_names(self):
        platform = Platform.homogeneous(3)
        for name in ("oneport", "uniport", "oneport-nooverlap", "macro-dataflow"):
            net = make_network(name, platform)
            assert net.name == name
            assert net.platform is platform

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown network model"):
            make_network("carrier-pigeon", Platform.homogeneous(2))

    def test_policy_kwarg(self):
        net = make_network("oneport", Platform.homogeneous(2), policy="insertion")
        assert net.policy == "insertion"


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 3),  # src
            st.integers(0, 3),  # dst
            st.floats(0.0, 50.0),  # ready
            st.floats(0.0, 20.0),  # volume
        ),
        min_size=1,
        max_size=25,
    )
)
def test_oneport_rollback_roundtrip(ops):
    """Placing any transfer sequence then rolling back restores all state."""
    net = OnePortNetwork(Platform.homogeneous(4, unit_delay=1.0))
    net.place_transfer(0, 1, 0.0, 5.0)  # some pre-existing state
    snapshot = (
        list(net._send_free),
        list(net._recv_free),
        list(net._link_free),
    )
    token = net.checkpoint()
    for src, dst, ready, vol in ops:
        start, finish = net.place_transfer(src, dst, ready, vol)
        assert start >= ready
        assert finish - start == pytest.approx(net.transfer_time(src, dst, vol))
    net.rollback(token)
    assert (
        list(net._send_free),
        list(net._recv_free),
        list(net._link_free),
    ) == snapshot


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.floats(0, 30), st.floats(0, 10)),
        min_size=1,
        max_size=20,
    )
)
def test_oneport_no_resource_overlap(ops):
    """Committed transfers never overlap on any port or link."""
    net = OnePortNetwork(Platform.homogeneous(3, unit_delay=1.0))
    placed = []
    for src, dst, ready, vol in ops:
        start, finish = net.place_transfer(src, dst, ready, vol)
        if src != dst and vol > 0:
            placed.append((src, dst, start, finish))
    by_resource: dict = {}
    for src, dst, s, f in placed:
        for key in (("send", src), ("recv", dst), ("link", src, dst)):
            by_resource.setdefault(key, []).append((s, f))
    for intervals in by_resource.values():
        intervals.sort()
        for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
            assert s2 >= f1 - 1e-9
