"""Routed reservation rollback: stress + checkpoint-depth diagnostics.

A routed transfer reserves 2 ports plus *every* directed hop of its
route, so its undo entries fan out much wider than the clique models' —
this suite hammers checkpoint/rollback nesting over shared-route
topologies (ring, star: heavy link sharing) and pins the
``undo_depth()`` accessor all logged models now expose.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.oneport import OnePortNetwork, UniPortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.platform.platform import Platform
from repro.platform.topology import Topology


def _routed_state(net: RoutedOnePortNetwork):
    return (
        list(net._send_free),
        list(net._recv_free),
        list(net._link_free),
    )


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 5),  # src
            st.integers(0, 5),  # dst
            st.floats(0.0, 50.0),  # ready
            st.floats(0.0, 20.0),  # volume
        ),
        min_size=1,
        max_size=25,
    ),
    shape=st.sampled_from(["ring", "star"]),
)
def test_routed_rollback_roundtrip(ops, shape):
    """Any transfer sequence rolls back to the exact pre-checkpoint state."""
    topo = Topology.ring(6) if shape == "ring" else Topology.star(6)
    net = RoutedOnePortNetwork(topo)
    net.place_transfer(0, 3, 0.0, 5.0)  # some pre-existing committed state
    net.commit()
    snapshot = _routed_state(net)
    token = net.checkpoint()
    for src, dst, ready, vol in ops:
        start, finish = net.place_transfer(src, dst, ready, vol)
        assert start >= ready
        assert finish - start == pytest.approx(net.transfer_time(src, dst, vol))
    net.rollback(token)
    assert _routed_state(net) == snapshot
    assert net.undo_depth() == token


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(0, 30), st.floats(0, 10)),
        min_size=2,
        max_size=20,
    )
)
def test_routed_nested_checkpoints(ops):
    """Reserve-and-rollback nesting (the trial/commit pattern) is exact."""
    net = RoutedOnePortNetwork(Topology.ring(6))
    states = [_routed_state(net)]
    tokens = [net.checkpoint()]
    for src, dst, ready, vol in ops:
        net.place_transfer(src, dst, ready, vol)
        states.append(_routed_state(net))
        tokens.append(net.checkpoint())
    # unwind the checkpoints innermost-first; each restores its snapshot
    for state, token in zip(reversed(states), reversed(tokens)):
        net.rollback(token)
        assert _routed_state(net) == state
        assert net.undo_depth() == token
    assert net.undo_depth() == 0


def test_undo_depth_accessors():
    """All logged models report their pending undo-log depth; commit and
    rollback drain it (routed entries fan out per route hop)."""
    topo = Topology.line(4)
    routed = RoutedOnePortNetwork(topo)
    assert routed.undo_depth() == 0
    routed.place_transfer(0, 3, 0.0, 10.0)  # send + recv + 3 hops
    assert routed.undo_depth() == 5
    token = routed.checkpoint()
    routed.place_transfer(1, 2, 0.0, 10.0)  # send + recv + 1 hop
    assert routed.undo_depth() == 8
    routed.rollback(token)
    assert routed.undo_depth() == 5
    routed.commit()
    assert routed.undo_depth() == 0

    plat = Platform.homogeneous(3, unit_delay=1.0)
    oneport = OnePortNetwork(plat)
    oneport.place_transfer(0, 1, 0.0, 5.0)
    assert oneport.undo_depth() == 3  # send + recv + link scalars
    oneport.commit()
    assert oneport.undo_depth() == 0

    insertion = OnePortNetwork(plat, policy="insertion")
    insertion.place_transfer(0, 1, 0.0, 5.0)
    # three interval reservations + three scalar frontier advances
    assert insertion.undo_depth() == 6
    insertion.rollback(0)
    assert insertion.undo_depth() == 0

    uniport = UniPortNetwork(plat)
    uniport.place_transfer(0, 1, 0.0, 5.0)
    assert uniport.undo_depth() == 3
    uniport.reset()
    assert uniport.undo_depth() == 0
