"""Property tests: gap-vector scans vs the interval-list implementation.

The insertion-policy fast path replays ``place_transfer``'s
first-common-gap scan against split start/end gap-vector overlays
(:class:`repro.schedule.kernel._GapOverlay`); the slow path walks plain
sorted interval lists (:func:`repro.comm.base.earliest_gap` /
:func:`common_gap_start`).  Bit-identity of the whole insertion
equivalence matrix rests on these two implementations agreeing on every
float — hypothesis hunts the disagreement directly, including touching
intervals, zero gaps, and interleaved insert/scan sequences.
"""

from hypothesis import given, settings, strategies as st

from repro.comm.base import common_gap_start, earliest_gap
from repro.comm.oneport import _GapTimeline
from repro.schedule.kernel import _common_gap3, _GapOverlay

#: bounded, finite, non-degenerate floats — timeline times are finite
_times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
_durations = st.floats(min_value=1e-3, max_value=50.0, allow_nan=False)


@st.composite
def interval_lists(draw, max_n=10):
    """Sorted, disjoint (possibly touching) busy intervals — exactly the
    invariant real ``_GapTimeline`` reservations maintain."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    t = draw(_times)
    out = []
    for _ in range(n):
        gap = draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
        dur = draw(_durations)
        s = t + gap
        f = s + dur
        out.append((s, f))
        t = f
    return out


def _overlay_from(intervals):
    starts = [s for s, _ in intervals]
    ends = [f for _, f in intervals]
    return _GapOverlay((starts, ends))


@given(interval_lists(), _times, _durations)
@settings(max_examples=300, deadline=None)
def test_overlay_earliest_matches_interval_walk(intervals, ready, duration):
    got = _overlay_from(intervals).earliest(ready, duration)
    want = earliest_gap(intervals, ready, duration)
    assert got == want  # exact float equality — bit-identity is the contract


@given(interval_lists(), _times)
@settings(max_examples=200, deadline=None)
def test_overlay_earliest_zero_duration(intervals, ready):
    assert _overlay_from(intervals).earliest(ready, 0.0) == earliest_gap(
        intervals, ready, 0.0
    )


@given(
    interval_lists(max_n=6),
    st.lists(st.tuples(_times, _durations), min_size=1, max_size=6),
)
@settings(max_examples=200, deadline=None)
def test_overlay_insert_sequence_matches_insort(intervals, requests):
    """Interleaved place-and-insert: after every simulated reservation the
    overlay and the insort-maintained list must agree on the next scan —
    the exact access pattern of the kernel's insertion evaluator."""
    from bisect import insort

    ivs = list(intervals)
    ov = _overlay_from(intervals)
    for ready, duration in requests:
        want = earliest_gap(ivs, ready, duration)
        got = ov.earliest(ready, duration)
        assert got == want
        finish = want + duration
        insort(ivs, (want, finish))
        ov.insert(want, finish)
    assert ov.starts == [s for s, _ in ivs]
    assert ov.ends == [f for _, f in ivs]


@given(
    interval_lists(max_n=6),
    interval_lists(max_n=6),
    interval_lists(max_n=6),
    _times,
    _durations,
)
@settings(max_examples=200, deadline=None)
def test_common_gap3_matches_common_gap_start(a, b, c, ready, duration):
    """The specialized send/recv/link fixpoint vs the generic one the
    slow path runs — same resource order, bit-identical starts."""
    sov, rov, lov = (_overlay_from(iv) for iv in (a, b, c))
    got = _common_gap3(
        sov.starts, sov.ends,
        rov.starts, rov.ends,
        lov.starts, lov.ends,
        ready, duration,
    )
    want = common_gap_start((a, b, c), ready, duration)
    assert got == want


@given(
    interval_lists(max_n=8),
    _times,
    _durations,
)
@settings(max_examples=200, deadline=None)
def test_common_gap3_single_busy_resource(intervals, ready, duration):
    """Two empty resources degenerate the fixpoint to one resource's
    gap walk — the quiet-counter round-robin must not terminate early
    or late on the trivial resources."""
    ov = _overlay_from(intervals)
    got = _common_gap3(
        ov.starts, ov.ends, [], [], [], [], ready, duration
    )
    assert got == earliest_gap(intervals, ready, duration)


def test_overlay_copies_do_not_alias_timeline_vectors():
    """Overlay ``insert`` is copy-on-touch — it must never write through
    to the committed timeline's cached vectors."""
    tl = _GapTimeline()
    tl.reserve(1.0, 2.0)
    starts, ends = tl.gap_vectors()
    ov = _GapOverlay((starts, ends))
    ov.insert(3.0, 4.0)
    assert starts == [1.0] and ends == [2.0]
    assert ov.starts == [1.0, 3.0] and ov.ends == [2.0, 4.0]


def test_timeline_gap_vectors_track_versions():
    """``_GapTimeline.gap_vectors()`` is cached per version and must
    follow reservations and releases (the undo log releases on
    rollback)."""
    tl = _GapTimeline()
    s0, e0 = tl.gap_vectors()
    assert s0 == [] and e0 == []
    tl.reserve(1.0, 2.0)
    tl.reserve(4.0, 5.5)
    s1, e1 = tl.gap_vectors()
    assert s1 == [1.0, 4.0] and e1 == [2.0, 5.5]
    assert tl.gap_vectors()[0] is s1  # cached while the version is unchanged
    tl.release(1.0, 2.0)
    s2, e2 = tl.gap_vectors()
    assert s2 == [4.0] and e2 == [5.5]
