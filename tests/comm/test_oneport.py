"""Tests for the bi-directional one-port network model (eqs. (1)-(6))."""

import pytest

from repro.comm.oneport import (
    NoOverlapOnePortNetwork,
    OnePortNetwork,
    UniPortNetwork,
)
from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError


@pytest.fixture
def net() -> OnePortNetwork:
    return OnePortNetwork(Platform.homogeneous(4, unit_delay=1.0))


class TestBasicPlacement:
    def test_transfer_time(self, net):
        assert net.transfer_time(0, 1, 10.0) == 10.0
        assert net.transfer_time(2, 2, 10.0) == 0.0

    def test_first_transfer_starts_at_ready(self, net):
        start, finish = net.place_transfer(0, 1, ready=5.0, volume=10.0)
        assert (start, finish) == (5.0, 15.0)

    def test_local_transfer_free(self, net):
        start, finish = net.place_transfer(2, 2, ready=3.0, volume=100.0)
        assert (start, finish) == (3.0, 3.0)
        assert net.send_free(2) == 0.0  # nothing reserved

    def test_zero_volume_free(self, net):
        start, finish = net.place_transfer(0, 1, ready=3.0, volume=0.0)
        assert (start, finish) == (3.0, 3.0)
        assert net.send_free(0) == 0.0


class TestSendingConstraint:
    """Constraint (2): outgoing messages of a processor are serialized."""

    def test_two_sends_serialize(self, net):
        net.place_transfer(0, 1, 0.0, 10.0)
        start, finish = net.place_transfer(0, 2, 0.0, 10.0)
        assert start == 10.0 and finish == 20.0

    def test_send_after_gap(self, net):
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(0, 2, 50.0, 10.0)
        assert start == 50.0


class TestReceivingConstraint:
    """Constraint (3): incoming messages of a processor are serialized."""

    def test_two_receives_serialize(self, net):
        net.place_transfer(0, 2, 0.0, 10.0)
        start, finish = net.place_transfer(1, 2, 0.0, 10.0)
        assert start == 10.0 and finish == 20.0


class TestLinkConstraint:
    """Constraint (1): a link carries one message at a time."""

    def test_same_link_serializes(self, net):
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(0, 1, 0.0, 10.0)
        assert start == 10.0

    def test_disjoint_pairs_parallel(self, net):
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(2, 3, 0.0, 10.0)
        assert start == 0.0

    def test_full_duplex(self, net):
        """Bidirectional model: send and receive may overlap on a processor."""
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(1, 0, 0.0, 10.0)
        assert start == 0.0


class TestSenderBound:
    def test_ignores_receiver(self, net):
        net.place_transfer(2, 1, 0.0, 10.0)  # busies P1's receive port
        # P0's sender-side bound ignores P1's receive port state
        assert net.sender_bound(0, 1, 0.0, 5.0) == 5.0

    def test_includes_send_port(self, net):
        net.place_transfer(0, 2, 0.0, 10.0)
        assert net.sender_bound(0, 1, 0.0, 5.0) == 15.0

    def test_local_is_ready(self, net):
        assert net.sender_bound(1, 1, 7.0, 100.0) == 7.0

    def test_pure_query(self, net):
        net.sender_bound(0, 1, 0.0, 5.0)
        assert net.send_free(0) == 0.0


class TestUndoLog:
    def test_rollback_restores_state(self, net):
        net.place_transfer(0, 1, 0.0, 10.0)
        token = net.checkpoint()
        net.place_transfer(0, 1, 0.0, 10.0)
        net.place_transfer(2, 1, 0.0, 10.0)
        net.rollback(token)
        assert net.send_free(0) == 10.0
        assert net.send_free(2) == 0.0
        assert net.recv_free(1) == 10.0

    def test_nested_checkpoints(self, net):
        t1 = net.checkpoint()
        net.place_transfer(0, 1, 0.0, 5.0)
        t2 = net.checkpoint()
        net.place_transfer(0, 1, 0.0, 5.0)
        net.rollback(t2)
        assert net.send_free(0) == 5.0
        net.rollback(t1)
        assert net.send_free(0) == 0.0

    def test_commit_clears_log(self, net):
        net.place_transfer(0, 1, 0.0, 5.0)
        net.commit()
        token = net.checkpoint()
        assert token == 0
        net.rollback(token)
        assert net.send_free(0) == 5.0  # commit is permanent

    def test_reset(self, net):
        net.place_transfer(0, 1, 0.0, 5.0)
        net.reset()
        assert net.send_free(0) == 0.0
        assert net.link_ready(0, 1) == 0.0


class TestInsertionPolicy:
    def test_gap_filling(self):
        net = OnePortNetwork(Platform.homogeneous(3, unit_delay=1.0), policy="insertion")
        net.place_transfer(0, 1, 0.0, 10.0)  # [0, 10]
        net.place_transfer(0, 1, 30.0, 10.0)  # [30, 40]
        # a short message fits in the idle gap [10, 30]
        start, finish = net.place_transfer(0, 1, 12.0, 5.0)
        assert start == 12.0 and finish == 17.0

    def test_no_gap_appends(self):
        net = OnePortNetwork(Platform.homogeneous(3, unit_delay=1.0), policy="insertion")
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(0, 1, 0.0, 20.0)
        assert start == 10.0

    def test_insertion_rollback(self):
        net = OnePortNetwork(Platform.homogeneous(3, unit_delay=1.0), policy="insertion")
        net.place_transfer(0, 1, 0.0, 10.0)
        token = net.checkpoint()
        net.place_transfer(0, 1, 0.0, 10.0)
        net.rollback(token)
        start, _ = net.place_transfer(0, 1, 0.0, 10.0)
        assert start == 10.0  # the rolled-back reservation is gone

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidPlatformError):
            OnePortNetwork(Platform.homogeneous(2), policy="bogus")


class TestUniPort:
    def test_send_blocks_receive(self):
        net = UniPortNetwork(Platform.homogeneous(3, unit_delay=1.0))
        net.place_transfer(0, 1, 0.0, 10.0)
        # P0 sent until 10; under uni-port it cannot receive meanwhile
        start, _ = net.place_transfer(2, 0, 0.0, 10.0)
        assert start == 10.0

    def test_reset_keeps_aliasing(self):
        net = UniPortNetwork(Platform.homogeneous(3, unit_delay=1.0))
        net.place_transfer(0, 1, 0.0, 10.0)
        net.reset()
        net.place_transfer(0, 1, 0.0, 10.0)
        start, _ = net.place_transfer(2, 0, 0.0, 10.0)
        assert start == 10.0

    def test_rollback_aliased(self):
        net = UniPortNetwork(Platform.homogeneous(3, unit_delay=1.0))
        token = net.checkpoint()
        net.place_transfer(0, 1, 0.0, 10.0)
        net.rollback(token)
        start, _ = net.place_transfer(2, 0, 0.0, 10.0)
        assert start == 0.0


class TestNoOverlap:
    def test_compute_floor_follows_comm(self):
        net = NoOverlapOnePortNetwork(Platform.homogeneous(3, unit_delay=1.0))
        assert net.compute_floor(0) == 0.0
        net.place_transfer(0, 1, 0.0, 10.0)
        assert net.compute_floor(0) == 10.0
        assert net.compute_floor(1) == 10.0
        assert net.compute_floor(2) == 0.0

    def test_note_compute_blocks_comm(self):
        net = NoOverlapOnePortNetwork(Platform.homogeneous(3, unit_delay=1.0))
        net.note_compute(0, 0.0, 20.0)
        start, _ = net.place_transfer(0, 1, 0.0, 5.0)
        assert start == 20.0

    def test_note_compute_rollback(self):
        net = NoOverlapOnePortNetwork(Platform.homogeneous(3, unit_delay=1.0))
        token = net.checkpoint()
        net.note_compute(0, 0.0, 20.0)
        net.rollback(token)
        start, _ = net.place_transfer(0, 1, 0.0, 5.0)
        assert start == 0.0


class TestOverlapDefault:
    def test_standard_model_overlaps_compute(self, net):
        """Default bi-directional one-port: comm/computation fully overlap."""
        net.note_compute(0, 0.0, 100.0)
        start, _ = net.place_transfer(0, 1, 0.0, 5.0)
        assert start == 0.0
        assert net.compute_floor(0) == 0.0
