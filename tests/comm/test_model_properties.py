"""Cross-model property tests for the communication substrates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.macrodataflow import MacroDataflowNetwork
from repro.comm.oneport import OnePortNetwork, UniPortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.platform.platform import Platform
from repro.platform.topology import Topology

TRANSFERS = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 3),
        st.floats(0, 40),
        st.floats(0, 15),
    ),
    min_size=1,
    max_size=20,
)


def _networks():
    platform = Platform.homogeneous(4, unit_delay=1.0)
    return [
        OnePortNetwork(platform),
        OnePortNetwork(platform, policy="insertion"),
        UniPortNetwork(Platform.homogeneous(4, unit_delay=1.0)),
        MacroDataflowNetwork(platform),
        RoutedOnePortNetwork(Topology.clique(4)),
    ]


@settings(max_examples=30, deadline=None)
@given(ops=TRANSFERS)
def test_sender_bound_is_lower_bound(ops):
    """Under append-only policies the placed finish never beats the
    sender-side bound (the receiver can only delay further); every model,
    including insertion (which may backfill gaps *below* the scalar
    frontier), still respects ``finish >= ready + W``."""
    for net in _networks():
        append_policy = getattr(net, "policy", "append") == "append"
        for src, dst, ready, vol in ops:
            bound = net.sender_bound(src, dst, ready, vol)
            start, finish = net.place_transfer(src, dst, ready, vol)
            w = net.transfer_time(src, dst, vol)
            assert finish >= ready + w - 1e-9
            if append_policy:
                assert finish >= bound - 1e-9


@settings(max_examples=30, deadline=None)
@given(ops=TRANSFERS)
def test_placements_monotone_per_resource(ops):
    """Sequential placements on the same model never travel back in time on
    a shared resource (append semantics)."""
    net = OnePortNetwork(Platform.homogeneous(4, unit_delay=1.0))
    last_finish: dict = {}
    for src, dst, ready, vol in ops:
        start, finish = net.place_transfer(src, dst, ready, vol)
        if src == dst or vol == 0:
            continue
        key = ("send", src)
        if key in last_finish:
            assert start >= last_finish[key] - 1e-9
        last_finish[key] = finish


@settings(max_examples=20, deadline=None)
@given(ops=TRANSFERS)
def test_macro_is_fastest_model(ops):
    """The contention-free model lower-bounds every contention model,
    transfer by transfer, given the same inputs."""
    macro = MacroDataflowNetwork(Platform.homogeneous(4, unit_delay=1.0))
    for net in _networks()[:3]:
        macro_finishes = []
        real_finishes = []
        for src, dst, ready, vol in ops:
            _s, f = macro.place_transfer(src, dst, ready, vol)
            macro_finishes.append(f)
            _s2, f2 = net.place_transfer(src, dst, ready, vol)
            real_finishes.append(f2)
        for mf, rf in zip(macro_finishes, real_finishes):
            assert rf >= mf - 1e-9


@settings(max_examples=25, deadline=None)
@given(ops=TRANSFERS, split=st.integers(0, 19))
def test_commit_prefix_independent_of_rollback(ops, split):
    """Rolling back a suffix then replaying it reproduces the same times."""
    net = OnePortNetwork(Platform.homogeneous(4, unit_delay=1.0))
    split = min(split, len(ops))
    for src, dst, ready, vol in ops[:split]:
        net.place_transfer(src, dst, ready, vol)
    token = net.checkpoint()
    first = [net.place_transfer(*op) for op in ops[split:]]
    net.rollback(token)
    second = [net.place_transfer(*op) for op in ops[split:]]
    assert first == second


def test_uniport_stricter_than_oneport():
    """Any transfer sequence finishes no earlier under the uni-port model."""
    ops = [(0, 1, 0.0, 10.0), (2, 0, 0.0, 10.0), (1, 3, 0.0, 5.0), (3, 0, 0.0, 5.0)]
    bi = OnePortNetwork(Platform.homogeneous(4, unit_delay=1.0))
    uni = UniPortNetwork(Platform.homogeneous(4, unit_delay=1.0))
    for op in ops:
        _s1, f1 = bi.place_transfer(*op)
        _s2, f2 = uni.place_transfer(*op)
        assert f2 >= f1 - 1e-9
