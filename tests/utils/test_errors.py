"""Tests for the exception hierarchy."""

import pytest

from repro.utils.errors import (
    ExecutionFailedError,
    InvalidGraphError,
    InvalidPlatformError,
    ReproError,
    ScheduleValidationError,
    SchedulingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidGraphError,
            InvalidPlatformError,
            SchedulingError,
            ScheduleValidationError,
            ExecutionFailedError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_catches_all(self):
        caught = 0
        for exc in (InvalidGraphError, SchedulingError, ExecutionFailedError):
            try:
                raise exc("x")
            except ReproError:
                caught += 1
        assert caught == 3

    def test_library_errors_are_not_value_errors(self):
        # genuine bugs (TypeError/ValueError) must escape ReproError handlers
        assert not issubclass(ValueError, ReproError)
        assert not issubclass(ReproError, ValueError)


class TestExecutionFailedError:
    def test_dead_tasks_attribute(self):
        err = ExecutionFailedError("lost", dead_tasks=(3, 1, 7))
        assert err.dead_tasks == (3, 1, 7)
        assert "lost" in str(err)

    def test_default_empty(self):
        assert ExecutionFailedError("x").dead_tasks == ()
