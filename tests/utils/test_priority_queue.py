"""Tests for the seeded max-priority queue."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.priority_queue import StablePriorityQueue


class TestBasics:
    def test_pop_returns_max(self):
        q = StablePriorityQueue()
        q.push("a", 1.0)
        q.push("b", 3.0)
        q.push("c", 2.0)
        assert q.pop() == "b"
        assert q.pop() == "c"
        assert q.pop() == "a"

    def test_len_and_bool(self):
        q = StablePriorityQueue()
        assert not q and len(q) == 0
        q.push(1, 0.5)
        assert q and len(q) == 1
        q.pop()
        assert not q

    def test_contains(self):
        q = StablePriorityQueue()
        q.push("x", 1.0)
        assert "x" in q and "y" not in q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            StablePriorityQueue().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            StablePriorityQueue().peek()

    def test_peek_does_not_remove(self):
        q = StablePriorityQueue()
        q.push("a", 1.0)
        assert q.peek() == "a"
        assert len(q) == 1

    def test_priority_of(self):
        q = StablePriorityQueue()
        q.push("a", 2.5)
        assert q.priority_of("a") == 2.5

    def test_iteration_over_live_items(self):
        q = StablePriorityQueue()
        for i in range(5):
            q.push(i, float(i))
        q.pop()
        assert sorted(q) == [0, 1, 2, 3]


class TestUpdates:
    def test_repush_updates_priority(self):
        q = StablePriorityQueue()
        q.push("a", 1.0)
        q.push("b", 2.0)
        q.push("a", 3.0)  # supersedes
        assert q.pop() == "a"
        assert q.pop() == "b"
        assert not q

    def test_repush_lower_priority(self):
        q = StablePriorityQueue()
        q.push("a", 5.0)
        q.push("b", 3.0)
        q.push("a", 1.0)
        assert q.pop() == "b"
        assert q.pop() == "a"

    def test_stale_entries_skipped_by_peek(self):
        q = StablePriorityQueue()
        q.push("a", 5.0)
        q.push("a", 1.0)
        q.push("b", 3.0)
        assert q.peek() == "b"


class TestRemove:
    def test_remove_live_item(self):
        q = StablePriorityQueue()
        q.push("a", 1.0)
        q.push("b", 2.0)
        q.remove("a")
        assert "a" not in q and len(q) == 1
        assert q.pop() == "b"
        assert not q

    def test_remove_missing_raises(self):
        q = StablePriorityQueue()
        q.push("a", 1.0)
        with pytest.raises(KeyError):
            q.remove("b")

    def test_remove_draws_no_rng(self):
        """Unlike the old push-inf-then-pop hack, removal must not burn a
        tie-break token or disturb the order of the remaining entries."""

        def run(removals: bool):
            rng = np.random.default_rng(42)
            q = StablePriorityQueue(rng)
            for i in range(12):
                q.push(i, 1.0)  # all tied: order is tie-token driven
            extras = []
            if removals:
                for i in (100, 101):
                    q.push(i, 1.0)
                    q.remove(i)
            order = [q.pop() for _ in range(12)]
            return order

        baseline = run(removals=False)
        # removing items consumes no *extra* randomness beyond their own
        # insertions, so the relative order of survivors is unchanged
        assert run(removals=True) == baseline

    def test_remove_then_peek_skips_stale(self):
        q = StablePriorityQueue()
        q.push("a", 5.0)
        q.push("b", 3.0)
        q.remove("a")
        assert q.peek() == "b"


class TestTieBreaking:
    def test_seeded_ties_are_reproducible(self):
        def run(seed):
            q = StablePriorityQueue(np.random.default_rng(seed))
            for i in range(20):
                q.push(i, 1.0)
            return [q.pop() for _ in range(20)]

        assert run(3) == run(3)

    def test_different_seeds_shuffle_ties(self):
        def run(seed):
            q = StablePriorityQueue(np.random.default_rng(seed))
            for i in range(30):
                q.push(i, 1.0)
            return [q.pop() for _ in range(30)]

        assert run(1) != run(2)


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(-100, 100)), max_size=60))
def test_pop_order_is_nonincreasing(items):
    """Whatever the pushes, pops come out in non-increasing priority order."""
    q = StablePriorityQueue(np.random.default_rng(0))
    final: dict[int, float] = {}
    for key, prio in items:
        q.push(key, prio)
        final[key] = prio
    popped = []
    while q:
        item = q.pop()
        popped.append(final[item])
    assert popped == sorted(popped, reverse=True)
    assert len(popped) == len(final)
