"""Tests for deterministic RNG handling."""

import numpy as np
import pytest

from repro.utils.rng import RngStream, as_rng, spawn_seed


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnSeed:
    def test_stable_across_calls(self):
        assert spawn_seed(1, "a", 2) == spawn_seed(1, "a", 2)

    def test_labels_matter(self):
        assert spawn_seed(1, "a") != spawn_seed(1, "b")

    def test_base_matters(self):
        assert spawn_seed(1, "a") != spawn_seed(2, "a")

    def test_order_matters(self):
        assert spawn_seed(1, "a", "b") != spawn_seed(1, "b", "a")

    def test_in_63_bit_range(self):
        for labels in [(), ("x",), (1, 2, 3)]:
            s = spawn_seed(99, *labels)
            assert 0 <= s < 2**63

    def test_numeric_label_types_distinguished(self):
        # repr-based hashing distinguishes 1 from "1"
        assert spawn_seed(0, 1) != spawn_seed(0, "1")


class TestRngStream:
    def test_same_labels_same_stream(self):
        s1, s2 = RngStream(5), RngStream(5)
        assert np.array_equal(s1.rng("g", 0).random(4), s2.rng("g", 0).random(4))

    def test_different_labels_independent(self):
        s = RngStream(5)
        assert not np.array_equal(s.rng("g", 0).random(4), s.rng("g", 1).random(4))

    def test_seed_matches_rng(self):
        s = RngStream(5)
        seed = s.seed("x")
        assert np.array_equal(
            np.random.default_rng(seed).random(3), s.rng("x").random(3)
        )

    def test_float_labels_stable(self):
        s = RngStream(7)
        assert s.seed("gran", 0.2) == s.seed("gran", 0.2)
        assert s.seed("gran", 0.2) != s.seed("gran", 0.4)
