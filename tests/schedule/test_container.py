"""Tests for the Schedule container object itself."""

import pytest

from repro.core.caft import caft
from repro.schedule.schedule import CommEvent, Replica
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from tests.conftest import make_instance


@pytest.fixture(scope="module")
def sched():
    inst = make_instance(num_tasks=20, num_procs=5, seed=2)
    return ftsa(inst, 1, rng=0)


class TestAccessors:
    def test_task_replicas(self, sched):
        reps = sched.task_replicas(3)
        assert reps is sched.replicas[3]
        assert all(r.task == 3 for r in reps)

    def test_all_replicas_count(self, sched):
        assert sum(1 for _ in sched.all_replicas()) == 2 * 20

    def test_replication_factor(self, sched):
        assert sched.replication_factor() == pytest.approx(2.0)

    def test_latency_definition(self, sched):
        expected = max(min(r.finish for r in reps) for reps in sched.replicas)
        assert sched.latency() == expected

    def test_makespan_definition(self, sched):
        expected = max(r.finish for reps in sched.replicas for r in reps)
        assert sched.makespan() == expected

    def test_message_count_matches_events(self, sched):
        assert sched.message_count() == len(sched.events)

    def test_comm_volume_positive(self, sched):
        assert sched.comm_volume() > 0
        assert sched.comm_busy_time() > 0

    def test_repr(self, sched):
        text = repr(sched)
        assert "ftsa" in text and "eps=1" in text


class TestCommitLogStructure:
    def test_log_contains_everything(self, sched):
        replicas = sum(1 for e in sched.commit_log if isinstance(e, Replica))
        events = sum(1 for e in sched.commit_log if isinstance(e, CommEvent))
        assert replicas == 2 * 20
        assert events == len(sched.events)

    def test_task_order_is_topological(self, sched):
        pos = {t: i for i, t in enumerate(sched.task_order)}
        for u, v, _vol in sched.instance.graph.edges():
            assert pos[u] < pos[v]

    def test_proc_replicas_sorted_by_start(self, sched):
        for reps in sched.proc_replicas:
            starts = [r.start for r in reps]
            assert starts == sorted(starts)

    def test_event_endpoints_consistent(self, sched):
        for e in sched.events:
            assert e.src_proc == e.src_replica.proc
            assert e.dst_replica is not None
            assert e.dst_proc == e.dst_replica.proc
            assert e.dst_task == e.dst_replica.task


class TestReplicaObject:
    def test_duration(self, sched):
        r = next(sched.all_replicas())
        assert r.duration == pytest.approx(r.finish - r.start)

    def test_repr_format(self, sched):
        r = next(sched.all_replicas())
        text = repr(r)
        assert f"t{r.task}" in text and f"P{r.proc}" in text

    def test_event_repr(self, sched):
        e = sched.events[0]
        assert "->" in repr(e)

    def test_kind_values(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        assert {r.kind for r in heft(inst).all_replicas()} == {"primary"}
        kinds_caft = {r.kind for r in caft(inst, 1, rng=0).all_replicas()}
        assert kinds_caft <= {"channel", "mixed", "greedy"}
