"""Tests for latency bounds, metrics and Gantt rendering."""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.dag.analysis import min_critical_path
from repro.schedule.bounds import latency_lower_bound, latency_upper_bound
from repro.schedule.gantt import render_gantt
from repro.schedule.metrics import (
    message_bound_ftsa,
    message_bound_one_to_one,
    normalized_latency,
    overhead_percent,
    summarize,
)
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from tests.conftest import make_instance


class TestBounds:
    def test_upper_ge_lower(self, epsilon):
        inst = make_instance(num_tasks=25, num_procs=6)
        for algo in (
            lambda: ftsa(inst, epsilon, rng=1),
            lambda: caft(inst, epsilon, rng=1),
            lambda: caft(inst, epsilon, locking="paper", rng=1),
        ):
            sched = algo()
            assert latency_upper_bound(sched) >= sched.latency() - 1e-9

    def test_heft_bounds_coincide(self):
        """Without replication, last copy == first copy: UB equals latency."""
        inst = make_instance()
        sched = heft(inst)
        assert latency_upper_bound(sched) == pytest.approx(sched.latency())

    def test_lower_bound_alias(self):
        inst = make_instance()
        sched = heft(inst)
        assert latency_lower_bound(sched) == sched.latency()

    def test_latency_vs_makespan(self):
        inst = make_instance()
        sched = ftsa(inst, epsilon=1, rng=0)
        assert sched.latency() <= sched.makespan()

    def test_upper_bound_reflects_worst_supply(self):
        """The UB must exceed the latency when replicas wait on slow copies."""
        inst = make_instance(num_tasks=30, num_procs=5, granularity=0.3)
        sched = ftsa(inst, epsilon=2, rng=3)
        assert latency_upper_bound(sched) > sched.latency()


class TestMetrics:
    def test_normalized_latency_ge_one(self):
        inst = make_instance()
        sched = heft(inst)
        assert normalized_latency(sched) >= 1.0

    def test_normalized_latency_definition(self):
        inst = make_instance()
        sched = heft(inst)
        assert normalized_latency(sched) == pytest.approx(
            sched.latency() / min_critical_path(inst)
        )

    def test_overhead_percent(self):
        assert overhead_percent(150.0, 100.0) == pytest.approx(50.0)
        assert overhead_percent(100.0, 100.0) == 0.0

    def test_overhead_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            overhead_percent(1.0, 0.0)

    def test_message_bounds(self):
        inst = make_instance()
        sched = ftsa(inst, epsilon=2, rng=0)
        e = inst.graph.num_edges
        assert message_bound_ftsa(sched) == e * 9
        assert message_bound_one_to_one(sched) == e * 3
        assert sched.message_count() <= message_bound_ftsa(sched)

    def test_summarize_fields(self):
        inst = make_instance()
        sched = ftsa(inst, epsilon=1, rng=0)
        rep = summarize(sched)
        assert rep.scheduler == "ftsa"
        assert rep.model == "oneport"
        assert rep.epsilon == 1
        assert rep.latency == pytest.approx(sched.latency())
        assert rep.upper_bound >= rep.latency
        assert rep.messages == sched.message_count()
        assert rep.replication_factor == pytest.approx(2.0)

    def test_comm_volume_and_busy(self):
        inst = make_instance()
        sched = ftsa(inst, epsilon=1, rng=0)
        assert sched.comm_volume() > 0
        assert sched.comm_busy_time() > 0


class TestGantt:
    def test_contains_processor_rows(self):
        inst = make_instance(num_tasks=8, num_procs=3)
        text = render_gantt(heft(inst))
        for p in range(3):
            assert f"P{p}" in text

    def test_comm_rows_optional(self):
        inst = make_instance(num_tasks=8, num_procs=3)
        sched = heft(inst)
        with_comms = render_gantt(sched, show_comms=True)
        without = render_gantt(sched, show_comms=False)
        assert len(with_comms.splitlines()) >= len(without.splitlines())

    def test_header_mentions_scheduler(self):
        inst = make_instance(num_tasks=8, num_procs=3)
        assert "heft" in render_gantt(heft(inst))

    def test_width_respected(self):
        inst = make_instance(num_tasks=8, num_procs=3)
        text = render_gantt(heft(inst), width=60)
        for line in text.splitlines():
            assert len(line) <= 60 + 20  # label margin
