"""Tests for the schedule validator: every check must catch its violation."""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.schedule.schedule import CommEvent
from repro.schedule.validation import is_valid, validate_schedule
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.errors import ScheduleValidationError
from tests.conftest import make_instance


@pytest.fixture
def schedule():
    inst = make_instance(num_tasks=15, num_procs=5)
    return ftsa(inst, epsilon=1, rng=0)


class TestValidSchedules:
    def test_ftsa_valid(self, schedule):
        validate_schedule(schedule)  # does not raise

    def test_heft_valid(self):
        inst = make_instance()
        validate_schedule(heft(inst), expected_replicas=1)

    def test_caft_valid(self):
        inst = make_instance()
        validate_schedule(caft(inst, epsilon=2), expected_replicas=3)

    def test_is_valid_wrapper(self, schedule):
        assert is_valid(schedule)


class TestTamperDetection:
    """Each mutation of a valid schedule must trip exactly its check."""

    def test_missing_replica(self, schedule):
        schedule.replicas[3].pop()
        with pytest.raises(ScheduleValidationError, match="replicas, expected"):
            validate_schedule(schedule)

    def test_space_exclusion(self, schedule):
        reps = schedule.replicas[3]
        reps[1].proc = reps[0].proc
        with pytest.raises(ScheduleValidationError, match="space exclusion"):
            validate_schedule(schedule)

    def test_wrong_duration(self, schedule):
        r = schedule.replicas[3][0]
        r.finish = r.finish + 5.0
        with pytest.raises(ScheduleValidationError, match="duration"):
            validate_schedule(schedule)

    def test_processor_overlap(self, schedule):
        # find a processor with two replicas and force them to overlap
        for p, reps in enumerate(schedule.proc_replicas):
            if len(reps) >= 2:
                dur0 = reps[0].duration
                dur1 = reps[1].duration
                reps[1].start = reps[0].start
                reps[1].finish = reps[1].start + dur1
                break
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_start_before_supply(self, schedule):
        # find a replica fed by a remote message and start it too early
        for reps in schedule.replicas:
            for r in reps:
                if r.inputs:
                    dur = r.duration
                    r.start = 0.0
                    r.finish = dur
                    with pytest.raises(ScheduleValidationError):
                        validate_schedule(schedule)
                    return
        pytest.skip("no remote-fed replica in this schedule")

    def test_message_before_source(self, schedule):
        ev = schedule.events[0]
        ev.start = ev.src_replica.finish - 1.0
        ev.finish = ev.start + ev.duration
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_message_wrong_duration(self, schedule):
        ev = schedule.events[0]
        ev.finish += 3.0
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_port_overlap(self, schedule):
        # two messages out of the same processor forced to overlap
        by_src: dict[int, list[CommEvent]] = {}
        for e in schedule.events:
            by_src.setdefault(e.src_proc, []).append(e)
        pair = next((evs for evs in by_src.values() if len(evs) >= 2), None)
        if pair is None:
            pytest.skip("no shared send port in this schedule")
        a, b = pair[0], pair[1]
        dur = b.duration
        b.start = a.start
        b.finish = b.start + dur
        # keep the source-consistency check quiet
        if b.start < b.src_replica.finish:
            b.src_replica.finish = b.start
            b.src_replica.start = b.start - b.src_replica.duration
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_intra_processor_event_rejected(self, schedule):
        ev = schedule.events[0]
        old_delay = schedule.instance.platform.delay(ev.src_proc, ev.dst_proc)
        ev.dst_proc = ev.src_proc
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule)

    def test_local_input_on_wrong_proc(self, schedule):
        for reps in schedule.replicas:
            for r in reps:
                if r.local_inputs:
                    pred, local = next(iter(r.local_inputs.items()))
                    r.proc = (r.proc + 1) % schedule.instance.num_procs
                    # avoid tripping space exclusion first: revert any clash
                    with pytest.raises(ScheduleValidationError):
                        validate_schedule(schedule)
                    return
        pytest.skip("no local input in this schedule")


class TestExpectedReplicas:
    def test_explicit_count_mismatch(self, schedule):
        with pytest.raises(ScheduleValidationError):
            validate_schedule(schedule, expected_replicas=3)

    def test_heft_wrong_default(self):
        inst = make_instance()
        sched = heft(inst)
        # heft schedules carry epsilon=0 so the default expectation is 1
        validate_schedule(sched)
