"""Tests for ScheduleBuilder trial/commit semantics."""

import numpy as np
import pytest

from repro.comm.oneport import OnePortNetwork
from repro.dag.generators import chain, fork_join, join
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedule.schedule import ScheduleBuilder
from repro.utils.errors import SchedulingError


def builder_for(graph, m=3, exec_time=5.0, delay=1.0, epsilon=0, **kw) -> ScheduleBuilder:
    platform = Platform.homogeneous(m, unit_delay=delay)
    E = np.full((graph.num_tasks, m), exec_time)
    inst = ProblemInstance(graph, platform, E)
    net = OnePortNetwork(platform)
    return ScheduleBuilder(inst, net, epsilon, "test", **kw)


class TestBasicCommit:
    def test_entry_task_starts_at_zero(self):
        b = builder_for(chain(2, volume=10.0))
        r = b.commit(0, 0, {})
        assert (r.start, r.finish) == (0.0, 5.0)

    def test_successor_same_proc_no_comm(self):
        b = builder_for(chain(2, volume=10.0))
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 0, {0: [r0]})
        assert r1.start == 5.0  # local data, no transfer
        assert r1.local_inputs[0] is r0
        assert not r1.inputs

    def test_successor_other_proc_pays_comm(self):
        b = builder_for(chain(2, volume=10.0))
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 1, {0: [r0]})
        assert r1.start == 15.0  # 5 exec + 10 transfer
        assert len(r1.inputs[0]) == 1
        ev = r1.inputs[0][0]
        assert (ev.start, ev.finish) == (5.0, 15.0)
        assert ev.src_replica is r0 and ev.dst_replica is r1

    def test_processor_ready_serializes_tasks(self):
        g = fork_join(2, volume=0.0)
        b = builder_for(g)
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 0, {0: [r0]})
        r2 = b.commit(2, 0, {0: [r0]})
        assert r1.start == 5.0
        assert r2.start == 10.0  # waits for r1 on the same processor

    def test_trial_has_no_side_effects(self):
        b = builder_for(chain(2, volume=10.0))
        r0 = b.commit(0, 0, {})
        before = b.network.send_free(0)
        t = b.trial(1, 1, {0: [r0]})
        assert t.finish == 20.0
        assert b.network.send_free(0) == before
        assert b.proc_ready[1] == 0.0
        assert len(b.schedule.events) == 0

    def test_trial_equals_commit(self):
        b = builder_for(chain(3, volume=10.0))
        r0 = b.commit(0, 0, {})
        t = b.trial(1, 1, {0: [r0]})
        r1 = b.commit(1, 1, {0: [r0]})
        assert (t.start, t.finish) == (r1.start, r1.finish)


class TestReceptionSerialization:
    """Eq. (6): messages to the same processor serialize at reception."""

    def test_join_arrivals_serialize(self):
        g = join(2, volume=10.0)  # t0, t1 -> t2
        b = builder_for(g)
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 1, {})
        r2 = b.commit(2, 2, {0: [r0], 1: [r1]})
        evs = sorted(b.schedule.events, key=lambda e: e.start)
        assert evs[0].start == 5.0 and evs[0].finish == 15.0
        assert evs[1].start == 15.0 and evs[1].finish == 25.0  # serialized
        assert r2.start == 25.0

    def test_sort_by_sender_bound(self):
        # t1 finishes later than t0 => its message is serialized second
        g = join(2, volume=10.0)
        platform = Platform.homogeneous(3, unit_delay=1.0)
        E = np.array([[5.0] * 3, [8.0] * 3, [5.0] * 3])
        inst = ProblemInstance(g, platform, E)
        b = ScheduleBuilder(inst, OnePortNetwork(platform), 0, "test")
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 1, {})
        r2 = b.commit(2, 2, {0: [r0], 1: [r1]})
        ev_by_src = {e.src_task: e for e in b.schedule.events}
        assert ev_by_src[0].start == 5.0
        assert ev_by_src[1].start == 15.0  # max(RF, its own ready=8) after first

    def test_first_arrival_semantics(self):
        """A task starts after the FIRST arrival per predecessor."""
        g = chain(2, volume=10.0)
        b = builder_for(g, m=4, epsilon=1)
        r0a = b.commit(0, 0, {})
        r0b = b.commit(0, 1, {})
        # replica of t1 on P2 receives from both copies of t0
        r1 = b.commit(1, 2, {0: [r0a, r0b]})
        assert len(r1.inputs[0]) == 2
        first = min(e.finish for e in r1.inputs[0])
        assert r1.start == first


class TestLocalSuppression:
    def test_self_sufficient_local_suppresses(self):
        g = chain(2, volume=10.0)
        b = builder_for(g, m=4, epsilon=1)
        r0a = b.commit(0, 0, {})
        r0b = b.commit(0, 1, {})
        r1 = b.commit(1, 0, {0: [r0a, r0b]})  # co-located with r0a
        assert r1.local_inputs[0] is r0a
        assert 0 not in r1.inputs  # no remote messages at all
        assert r1.start == 5.0

    def test_fragile_local_keeps_remote(self):
        g = chain(2, volume=10.0)
        b = builder_for(g, m=4, epsilon=1)
        r0a = b.commit(0, 0, {}, support=frozenset({0, 3}))  # fragile
        r0b = b.commit(0, 1, {})
        r1 = b.commit(1, 0, {0: [r0a, r0b]})
        assert r1.local_inputs[0] is r0a
        assert len(r1.inputs[0]) == 1  # remote copy still sends
        assert r1.inputs[0][0].src_replica is r0b

    def test_strict_mode_suppresses_fragile(self):
        g = chain(2, volume=10.0)
        b = builder_for(g, m=4, epsilon=1, strict_local_suppression=True)
        r0a = b.commit(0, 0, {}, support=frozenset({0, 3}))
        r0b = b.commit(0, 1, {})
        r1 = b.commit(1, 0, {0: [r0a, r0b]})
        assert 0 not in r1.inputs  # paper §6 reading


class TestErrors:
    def test_space_exclusion_enforced(self):
        b = builder_for(chain(2), epsilon=1)
        b.commit(0, 0, {})
        with pytest.raises(SchedulingError, match="space exclusion"):
            b.commit(0, 0, {})

    def test_missing_sources_rejected(self):
        b = builder_for(chain(2))
        b.commit(0, 0, {})
        with pytest.raises(SchedulingError, match="no sources"):
            b.commit(1, 1, {})

    def test_empty_source_list_rejected(self):
        b = builder_for(chain(2))
        b.commit(0, 0, {})
        with pytest.raises(SchedulingError, match="empty source"):
            b.commit(1, 1, {0: []})

    def test_epsilon_needs_enough_procs(self):
        with pytest.raises(SchedulingError, match="space"):
            builder_for(chain(2), m=2, epsilon=2)

    def test_negative_epsilon(self):
        with pytest.raises(SchedulingError):
            builder_for(chain(2), epsilon=-1)

    def test_finish_requires_all_tasks(self):
        b = builder_for(chain(2))
        b.commit(0, 0, {})
        with pytest.raises(SchedulingError, match="never scheduled"):
            b.finish()


class TestCommitLog:
    def test_events_precede_their_replica(self):
        g = join(2, volume=10.0)
        b = builder_for(g)
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 1, {})
        r2 = b.commit(2, 2, {0: [r0], 1: [r1]})
        log = b.schedule.commit_log
        idx = {id(entry): i for i, entry in enumerate(log)}
        for evs in r2.inputs.values():
            for e in evs:
                assert idx[id(e)] < idx[id(r2)]

    def test_seq_strictly_increasing(self):
        g = join(2, volume=10.0)
        b = builder_for(g)
        r0 = b.commit(0, 0, {})
        r1 = b.commit(1, 1, {})
        b.commit(2, 2, {0: [r0], 1: [r1]})
        seqs = [e.seq for e in b.schedule.commit_log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_task_order_recorded(self):
        b = builder_for(chain(2))
        r0 = b.commit(0, 0, {})
        b.mark_task_done(0)
        b.commit(1, 0, {0: [r0]})
        b.mark_task_done(1)
        assert b.schedule.task_order == [0, 1]
