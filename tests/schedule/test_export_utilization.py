"""Tests for schedule serialization and utilization analysis."""

import json

import pytest

from repro.core.caft import caft
from repro.fault.model import FailureScenario
from repro.fault.simulator import replay
from repro.schedule.bounds import latency_upper_bound
from repro.schedule.export import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.schedule.utilization import (
    idle_fraction,
    replication_traffic_share,
    utilization,
)
from repro.schedule.validation import validate_schedule
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.errors import ScheduleValidationError
from tests.conftest import make_instance


class TestExportRoundTrip:
    @pytest.fixture
    def pair(self):
        inst = make_instance(num_tasks=20, num_procs=5, seed=8)
        sched = caft(inst, 1, rng=1)
        return inst, sched

    def test_dict_fields(self, pair):
        _inst, sched = pair
        data = schedule_to_dict(sched)
        assert data["format"] == "repro-schedule-v1"
        assert data["scheduler"] == "caft"
        assert len(data["replicas"]) == sum(len(r) for r in sched.replicas)
        assert len(data["events"]) == len(sched.events)
        assert data["metrics"]["latency"] == pytest.approx(sched.latency())

    def test_json_text(self, pair):
        _inst, sched = pair
        text = schedule_to_json(sched)
        json.loads(text)  # valid JSON

    def test_json_file(self, pair, tmp_path):
        _inst, sched = pair
        path = tmp_path / "sched.json"
        schedule_to_json(sched, path)
        assert path.exists()

    def test_roundtrip_preserves_everything(self, pair):
        inst, sched = pair
        rebuilt = schedule_from_json(schedule_to_json(sched), inst)
        validate_schedule(rebuilt)
        assert rebuilt.latency() == pytest.approx(sched.latency())
        assert rebuilt.makespan() == pytest.approx(sched.makespan())
        assert rebuilt.message_count() == sched.message_count()
        assert latency_upper_bound(rebuilt) == pytest.approx(
            latency_upper_bound(sched)
        )
        assert rebuilt.task_order == sched.task_order

    def test_roundtrip_is_replayable(self, pair):
        inst, sched = pair
        rebuilt = schedule_from_dict(schedule_to_dict(sched), inst)
        for victim in range(inst.num_procs):
            scenario = FailureScenario.crash_at_start([victim])
            a = replay(sched, scenario)
            b = replay(rebuilt, scenario)
            assert a.success == b.success
            if a.success:
                assert a.latency() == pytest.approx(b.latency())

    def test_supports_preserved(self, pair):
        inst, sched = pair
        rebuilt = schedule_from_dict(schedule_to_dict(sched), inst)
        for orig_reps, new_reps in zip(sched.replicas, rebuilt.replicas):
            for a, b in zip(orig_reps, new_reps):
                assert a.support == b.support
                assert a.kind == b.kind

    def test_roundtrip_preserves_network_config(self):
        """The export must carry the configured network, not just its
        name: an imported insertion-policy schedule replayed under
        append semantics silently reports wrong crash latencies, and a
        routed one crashes rebuilding its network without the topology."""
        from repro.comm.oneport import OnePortNetwork
        from repro.comm.routed import RoutedOnePortNetwork
        from repro.platform.instance import ProblemInstance
        from repro.platform.topology import Topology

        inst = make_instance(num_tasks=12, num_procs=5, seed=3)
        sched = ftsa(
            inst, 1, model=OnePortNetwork(inst.platform, policy="insertion"), rng=0
        )
        rebuilt = schedule_from_dict(schedule_to_dict(sched), inst)
        net = rebuilt.make_network()
        assert net.policy == "insertion"
        no_crash = FailureScenario.crash_at_start([])
        assert replay(rebuilt, no_crash).latency() == pytest.approx(
            replay(sched, no_crash).latency()
        )

        topo = Topology.ring(5, delay=0.7)
        rinst = ProblemInstance(inst.graph, topo.to_platform(), inst.exec_cost)
        rsched = ftsa(rinst, 1, model=RoutedOnePortNetwork(topo), rng=0)
        rrebuilt = schedule_from_dict(schedule_to_dict(rsched), rinst)
        rnet = rrebuilt.make_network()
        assert rnet.name == "routed-oneport"
        assert rnet.topology.links() == topo.links()
        assert replay(rrebuilt, no_crash).latency() == pytest.approx(
            replay(rsched, no_crash).latency()
        )

    def test_rejects_unknown_format(self, pair):
        inst, _sched = pair
        with pytest.raises(ScheduleValidationError):
            schedule_from_dict({"format": "v999"}, inst)

    def test_rejects_shape_mismatch(self, pair):
        _inst, sched = pair
        other = make_instance(num_tasks=5, num_procs=3)
        with pytest.raises(ScheduleValidationError, match="shape"):
            schedule_from_dict(schedule_to_dict(sched), other)


class TestUtilization:
    def test_report_shapes(self):
        inst = make_instance(num_tasks=20, num_procs=5)
        sched = ftsa(inst, 1, rng=0)
        rep = utilization(sched)
        assert len(rep.proc_busy) == 5
        assert rep.makespan == pytest.approx(sched.makespan())
        assert 0.0 < rep.mean_proc_utilization <= 1.0
        assert 0.0 <= rep.max_port_utilization <= 1.0

    def test_busy_matches_metrics(self):
        inst = make_instance(num_tasks=20, num_procs=5)
        sched = ftsa(inst, 1, rng=0)
        rep = utilization(sched)
        assert sum(rep.send_busy) == pytest.approx(sched.comm_busy_time())
        assert sum(rep.recv_busy) == pytest.approx(sched.comm_busy_time())
        assert sum(rep.link_busy.values()) == pytest.approx(sched.comm_busy_time())

    def test_busiest_link(self):
        inst = make_instance(num_tasks=25, num_procs=5, granularity=0.3)
        sched = ftsa(inst, 1, rng=0)
        busiest = utilization(sched).busiest_link
        assert busiest is not None
        (a, b), t = busiest
        assert a != b and t > 0

    def test_no_comm_schedule(self):
        """A single-processor platform produces no messages at all."""
        import numpy as np

        from repro.dag.generators import random_dag
        from repro.platform.instance import ProblemInstance
        from repro.platform.platform import Platform

        graph = random_dag(10, rng=0)
        inst = ProblemInstance(
            graph, Platform.homogeneous(1), np.full((10, 1), 5.0)
        )
        sched = heft(inst, rng=0)
        rep = utilization(sched)
        assert rep.busiest_link is None
        assert rep.mean_proc_utilization == pytest.approx(1.0)
        assert idle_fraction(sched) == pytest.approx(0.0)

    def test_idle_fraction_range(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = caft(inst, 1, rng=0)
        assert 0.0 <= idle_fraction(sched) < 1.0

    def test_replication_share_orders_algorithms(self):
        """FTSA's fan-out carries more replication traffic than CAFT's
        one-to-one channels on the same instance."""
        inst = make_instance(num_tasks=40, num_procs=8, granularity=0.5, seed=4)
        share_caft = replication_traffic_share(caft(inst, 1, rng=0))
        share_ftsa = replication_traffic_share(ftsa(inst, 1, rng=0))
        assert 0.0 <= share_caft <= 1.0
        assert share_caft <= share_ftsa + 0.05

    def test_replication_share_zero_without_replication(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = heft(inst, rng=0)
        # with one replica per task every edge ships at most once... unless
        # co-location removed the message entirely; share must be 0
        assert replication_traffic_share(sched) == pytest.approx(0.0)
