"""Property tests: builder/replayer consistency across the whole design space.

The strongest internal invariant of the library: for ANY instance, ANY
scheduler, ANY network model, replaying the committed schedule with zero
failures reproduces every committed time exactly.  This pins the builder's
resource algebra (eqs. (4)-(6)) and the replay engine to each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.fault.model import FailureScenario
from repro.fault.simulator import replay
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from tests.conftest import make_instance

ALGOS = {
    "heft": lambda inst, eps, model, seed: heft(inst, model=model, rng=seed),
    "ftsa": lambda inst, eps, model, seed: ftsa(inst, eps, model=model, rng=seed),
    "ftsa-re": lambda inst, eps, model, seed: ftsa(
        inst, eps, model=model, reselect=True, rng=seed
    ),
    "ftbar": lambda inst, eps, model, seed: ftbar(inst, eps, model=model, rng=seed),
    "caft": lambda inst, eps, model, seed: caft(inst, eps, model=model, rng=seed),
    "caft-paper": lambda inst, eps, model, seed: caft(
        inst, eps, model=model, locking="paper", rng=seed
    ),
    "caft-batch": lambda inst, eps, model, seed: caft_batch(
        inst, eps, window=4, model=model, rng=seed
    ),
}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    v=st.integers(5, 30),
    m=st.integers(3, 7),
    eps=st.integers(0, 2),
    gran=st.sampled_from([0.2, 1.0, 5.0]),
    algo=st.sampled_from(sorted(ALGOS)),
    model=st.sampled_from(["oneport", "macro-dataflow", "uniport"]),
)
def test_zero_failure_replay_identity(seed, v, m, eps, gran, algo, model):
    if eps + 1 > m:
        eps = m - 1
    if algo == "heft":
        eps = 0
    inst = make_instance(num_tasks=v, num_procs=m, granularity=gran, seed=seed)
    sched = ALGOS[algo](inst, eps, model, seed)
    result = replay(sched, FailureScenario.none())
    assert result.success
    for reps in sched.replicas:
        for r in reps:
            out = result.outcome_of(r)
            assert out.start == pytest.approx(r.start, abs=1e-9)
            assert out.finish == pytest.approx(r.finish, abs=1e-9)
    for e in sched.events:
        eo = result.event_outcomes[e.seq]
        assert eo.delivered
        assert eo.start == pytest.approx(e.start, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    v=st.integers(8, 25),
    eps=st.integers(1, 2),
    victim=st.integers(0, 4),
)
def test_crash_latency_vs_upper_bound(seed, v, eps, victim):
    """Any single-crash latency of a robust CAFT schedule stays below the
    schedule's worst-case upper bound."""
    from repro.schedule.bounds import latency_upper_bound

    inst = make_instance(num_tasks=v, num_procs=5, seed=seed)
    sched = caft(inst, eps, rng=seed)
    ub = latency_upper_bound(sched)
    result = replay(sched, FailureScenario.crash_at_start([victim]))
    assert result.success
    assert result.latency() <= ub + 1e-6


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), v=st.integers(8, 25))
def test_fewer_failures_never_hurt_coverage(seed, v):
    """Monotonicity: removing a failure never shrinks the completed set."""
    inst = make_instance(num_tasks=v, num_procs=5, seed=seed)
    sched = caft(inst, 2, rng=seed)
    two = replay(sched, FailureScenario.crash_at_start([0, 1]))
    one = replay(sched, FailureScenario.crash_at_start([0]))
    completed_two = {
        s for s, out in two.replica_outcomes.items() if out.status.value == "completed"
    }
    completed_one = {
        s for s, out in one.replica_outcomes.items() if out.status.value == "completed"
    }
    assert completed_two <= completed_one
