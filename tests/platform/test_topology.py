"""Tests for sparse topologies and routing."""

import numpy as np
import pytest

from repro.platform.topology import Topology
from repro.utils.errors import InvalidPlatformError


class TestConstruction:
    def test_link_delay_lookup(self):
        t = Topology(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert t.link_delay(0, 1) == 2.0
        assert t.link_delay(1, 0) == 2.0  # undirected lookup

    def test_missing_link_raises(self):
        t = Topology(3, [(0, 1, 1.0), (1, 2, 1.0)])
        with pytest.raises(InvalidPlatformError):
            t.link_delay(0, 2)

    def test_rejects_self_link(self):
        with pytest.raises(InvalidPlatformError):
            Topology(2, [(0, 0, 1.0)])

    def test_rejects_duplicate_link(self):
        with pytest.raises(InvalidPlatformError):
            Topology(2, [(0, 1, 1.0), (1, 0, 2.0)])

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(InvalidPlatformError):
            Topology(2, [(0, 1, 0.0)])

    def test_rejects_disconnected(self):
        with pytest.raises(InvalidPlatformError, match="disconnected"):
            Topology(4, [(0, 1, 1.0), (2, 3, 1.0)])


class TestRouting:
    def test_line_route(self):
        t = Topology.line(4)
        assert t.route(0, 3) == (0, 1, 2, 3)
        assert t.route_links(0, 3) == ((0, 1), (1, 2), (2, 3))

    def test_route_to_self(self):
        t = Topology.line(3)
        assert t.route(1, 1) == (1,)
        assert t.route_links(1, 1) == ()

    def test_shortest_by_delay_not_hops(self):
        # 0-1-2 cheap (1+1), direct 0-2 expensive (5): route via 1
        t = Topology(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        assert t.route(0, 2) == (0, 1, 2)

    def test_ring_goes_shorter_way(self):
        t = Topology.ring(6)
        assert t.route(0, 1) == (0, 1)
        assert len(t.route(0, 3)) == 4  # 3 hops either way

    def test_effective_delay_matrix(self):
        t = Topology.line(3, delay=2.0)
        d = t.effective_delay_matrix()
        assert d[0, 2] == 4.0
        assert d[0, 1] == 2.0
        assert d[1, 1] == 0.0
        assert np.allclose(d, d.T)

    def test_to_platform(self):
        p = Topology.star(4, delay=1.5).to_platform()
        assert p.num_procs == 4
        assert p.delay(1, 2) == 3.0  # via hub
        assert p.delay(0, 3) == 1.5


class TestShapes:
    def test_clique_links(self):
        t = Topology.clique(4)
        assert len(t.links()) == 6

    def test_ring_links(self):
        assert len(Topology.ring(5).links()) == 5

    def test_star_center(self):
        t = Topology.star(5)
        for i in range(1, 5):
            assert t.route(i, 0) == (i, 0)

    def test_mesh_dimensions(self):
        t = Topology.mesh2d(2, 3)
        assert t.num_procs == 6
        assert len(t.links()) == 2 * 2 + 3 * 1  # 4 horizontal + 3 vertical

    def test_mesh_route_is_shortest(self):
        t = Topology.mesh2d(3, 3)
        assert len(t.route(0, 8)) == 5  # 4 hops manhattan

    def test_small_shape_validation(self):
        with pytest.raises(InvalidPlatformError):
            Topology.ring(2)
        with pytest.raises(InvalidPlatformError):
            Topology.line(1)
        with pytest.raises(InvalidPlatformError):
            Topology.star(1)
        with pytest.raises(InvalidPlatformError):
            Topology.mesh2d(1, 1)


class TestFatTree:
    """Closed-form fat-tree metrics (PAPERS.md: the Benes-variant
    multistage-network work has no extractable numeric benchmarks, so
    the validation is against the Clos/fat-tree characterization:
    node/link counts and the 3-hop full-bisection diameter)."""

    def test_node_and_link_counts(self):
        # pods * C(pod_size, 2) intra-pod + C(pods, 2) core links
        t = Topology.fat_tree(4, 4)
        assert t.num_procs == 16
        assert len(t.links()) == 4 * 6 + 6

    def test_route_delay_diameter_is_three_hops(self):
        t = Topology.fat_tree(3, 4, delay=1.0)
        d = t.effective_delay_matrix()
        assert d.max() == 3.0  # member -> uplink -> uplink -> member
        # intra-pod is always a single hop
        assert d[1, 2] == 1.0 and d[4, 7] == 1.0

    def test_uplinks_are_two_hops_apart(self):
        t = Topology.fat_tree(3, 4)
        assert t.route(0, 4) == (0, 4)  # uplink to uplink: core link
        assert len(t.route(1, 5)) == 4  # member to member: 3 hops

    def test_registered_shape_uses_most_square_pods(self):
        from repro.platform.topology import make_topology

        t = make_topology("fat-tree", 12)  # 3 pods x 4 processors
        assert t.num_procs == 12
        assert len(t.links()) == 3 * 6 + 3

    def test_topology_groups_are_the_pods(self):
        from repro.platform.topology import topology_groups

        assert topology_groups("fat-tree", 12) == [
            (0, 1, 2, 3),
            (4, 5, 6, 7),
            (8, 9, 10, 11),
        ]
        assert topology_groups("ring", 6) is None

    def test_small_fat_tree_validation(self):
        with pytest.raises(InvalidPlatformError):
            Topology.fat_tree(1, 1)
        with pytest.raises(InvalidPlatformError):
            Topology.fat_tree(0, 4)
