"""Tests for Platform and ProblemInstance."""

import numpy as np
import pytest

from repro.dag.generators import chain, random_dag
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError


class TestPlatform:
    def test_homogeneous(self):
        p = Platform.homogeneous(4, unit_delay=2.0)
        assert p.num_procs == 4
        assert p.delay(0, 1) == 2.0
        assert p.delay(2, 2) == 0.0

    def test_delay_matrix_read_only(self):
        p = Platform.homogeneous(3)
        with pytest.raises(ValueError):
            p.delay_matrix[0, 1] = 5.0

    def test_mean_delay_excludes_diagonal(self):
        p = Platform.homogeneous(3, unit_delay=2.0)
        assert p.mean_delay() == pytest.approx(2.0)

    def test_mean_delay_single_proc(self):
        assert Platform.homogeneous(1).mean_delay() == 0.0

    def test_max_delay(self):
        d = np.array([[0.0, 1.0], [3.0, 0.0]])
        assert Platform(d).max_delay() == 3.0

    def test_asymmetric_allowed(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        p = Platform(d)
        assert p.delay(0, 1) == 1.0
        assert p.delay(1, 0) == 2.0

    def test_custom_names(self):
        p = Platform(np.zeros((2, 2)), names=["fast", "slow"])
        assert p.names == ("fast", "slow")

    def test_rejects_nonzero_diagonal(self):
        d = np.ones((2, 2))
        with pytest.raises(InvalidPlatformError, match="d\\(P, P\\)"):
            Platform(d)

    def test_rejects_negative_delay(self):
        d = np.array([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(InvalidPlatformError):
            Platform(d)

    def test_rejects_non_square(self):
        with pytest.raises(InvalidPlatformError, match="square"):
            Platform(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(InvalidPlatformError):
            Platform(np.zeros((0, 0)))

    def test_rejects_nan(self):
        d = np.array([[0.0, np.nan], [1.0, 0.0]])
        with pytest.raises(InvalidPlatformError):
            Platform(d)

    def test_rejects_bad_names(self):
        with pytest.raises(InvalidPlatformError):
            Platform(np.zeros((2, 2)), names=["a"])

    def test_rejects_bad_homogeneous(self):
        with pytest.raises(InvalidPlatformError):
            Platform.homogeneous(0)
        with pytest.raises(InvalidPlatformError):
            Platform.homogeneous(2, unit_delay=-1.0)


class TestProblemInstance:
    def make(self):
        graph = chain(3, volume=10.0)
        platform = Platform.homogeneous(2, unit_delay=0.5)
        E = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        return ProblemInstance(graph, platform, E)

    def test_cost_lookup(self):
        inst = self.make()
        assert inst.cost(1, 0) == 3.0
        assert inst.cost(2, 1) == 6.0

    def test_mean_and_min_exec(self):
        inst = self.make()
        assert inst.mean_exec.tolist() == [1.5, 3.5, 5.5]
        assert inst.min_exec.tolist() == [1.0, 3.0, 5.0]

    def test_mean_edge_weight(self):
        inst = self.make()
        assert inst.mean_edge_weight(0, 1) == pytest.approx(5.0)  # 10 * 0.5

    def test_comm_cost(self):
        inst = self.make()
        assert inst.comm_cost(0, 1, 0, 1) == 5.0
        assert inst.comm_cost(0, 1, 1, 1) == 0.0

    def test_exec_cost_read_only(self):
        inst = self.make()
        with pytest.raises(ValueError):
            inst.exec_cost[0, 0] = 9.0

    def test_rejects_wrong_shape(self):
        graph = chain(3)
        platform = Platform.homogeneous(2)
        with pytest.raises(InvalidPlatformError, match="shape"):
            ProblemInstance(graph, platform, np.ones((3, 3)))

    def test_rejects_nonpositive_cost(self):
        graph = chain(2)
        platform = Platform.homogeneous(2)
        with pytest.raises(InvalidPlatformError):
            ProblemInstance(graph, platform, np.array([[1.0, 0.0], [1.0, 1.0]]))

    def test_rejects_infinite_cost(self):
        graph = chain(2)
        platform = Platform.homogeneous(2)
        E = np.array([[1.0, np.inf], [1.0, 1.0]])
        with pytest.raises(InvalidPlatformError):
            ProblemInstance(graph, platform, E)

    def test_properties(self):
        inst = self.make()
        assert inst.num_tasks == 3
        assert inst.num_procs == 2
