"""Tests for platform/cost generators and granularity scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.generators import chain, random_dag
from repro.platform.heterogeneity import (
    granularity,
    range_exec_matrix,
    related_exec_matrix,
    scale_to_granularity,
    slowest_comm_sum,
    slowest_exec_sum,
    uniform_delay_platform,
)
from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError


class TestUniformDelayPlatform:
    def test_in_range(self):
        p = uniform_delay_platform(8, delay_range=(0.5, 1.0), rng=0)
        d = p.delay_matrix
        off = d[~np.eye(8, dtype=bool)]
        assert (off >= 0.5).all() and (off <= 1.0).all()

    def test_symmetric_by_default(self):
        p = uniform_delay_platform(6, rng=1)
        assert np.allclose(p.delay_matrix, p.delay_matrix.T)

    def test_asymmetric_option(self):
        p = uniform_delay_platform(6, rng=1, symmetric=False)
        assert not np.allclose(p.delay_matrix, p.delay_matrix.T)

    def test_deterministic(self):
        a = uniform_delay_platform(5, rng=9).delay_matrix
        b = uniform_delay_platform(5, rng=9).delay_matrix
        assert np.array_equal(a, b)

    def test_bad_range(self):
        with pytest.raises(InvalidPlatformError):
            uniform_delay_platform(4, delay_range=(1.0, 0.5))


class TestExecMatrices:
    def test_range_matrix_band(self):
        base = np.array([10.0, 20.0])
        E = range_exec_matrix(base, 50, heterogeneity=0.5, rng=0)
        assert E.shape == (2, 50)
        assert (E[0] >= 7.5).all() and (E[0] <= 12.5).all()
        assert (E[1] >= 15.0).all() and (E[1] <= 25.0).all()

    def test_zero_heterogeneity_identical(self):
        E = range_exec_matrix(np.array([5.0]), 4, heterogeneity=0.0, rng=0)
        assert np.allclose(E, 5.0)

    def test_rejects_heterogeneity_2(self):
        with pytest.raises(InvalidPlatformError):
            range_exec_matrix(np.array([1.0]), 2, heterogeneity=2.0)

    def test_rejects_bad_base(self):
        with pytest.raises(InvalidPlatformError):
            range_exec_matrix(np.array([0.0]), 2)

    def test_related_matrix(self):
        E = related_exec_matrix(np.array([6.0, 12.0]), np.array([1.0, 2.0, 3.0]))
        assert E[0].tolist() == [6.0, 3.0, 2.0]
        assert E[1].tolist() == [12.0, 6.0, 4.0]

    def test_related_rejects_bad_speed(self):
        with pytest.raises(InvalidPlatformError):
            related_exec_matrix(np.array([1.0]), np.array([0.0]))


class TestGranularity:
    def test_definition(self):
        graph = chain(2, volume=10.0)
        platform = Platform.homogeneous(2, unit_delay=2.0)
        E = np.array([[4.0, 8.0], [6.0, 2.0]])
        # slowest exec sum = 8 + 6 = 14; slowest comm = 10 * 2 = 20
        assert slowest_exec_sum(E) == 14.0
        assert slowest_comm_sum(graph, platform) == 20.0
        assert granularity(graph, platform, E) == pytest.approx(0.7)

    def test_scaling_is_exact(self):
        graph = random_dag(30, rng=0)
        platform = uniform_delay_platform(5, rng=1)
        E = range_exec_matrix(np.full(30, 3.0), 5, rng=2)
        for target in (0.2, 1.0, 7.5):
            scaled = scale_to_granularity(graph, platform, E, target)
            assert granularity(graph, platform, scaled) == pytest.approx(target)

    def test_scaling_preserves_ratios(self):
        graph = chain(3, volume=5.0)
        platform = Platform.homogeneous(2, unit_delay=1.0)
        E = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        scaled = scale_to_granularity(graph, platform, E, 2.0)
        assert np.allclose(scaled / E, scaled[0, 0] / E[0, 0])

    def test_edgeless_graph_rejected(self):
        from repro.dag.graph import TaskGraph

        graph = TaskGraph(3, [])
        platform = Platform.homogeneous(2)
        with pytest.raises(InvalidPlatformError, match="undefined"):
            granularity(graph, platform, np.ones((3, 2)))

    def test_bad_target_rejected(self):
        graph = chain(2, volume=1.0)
        platform = Platform.homogeneous(2)
        with pytest.raises(InvalidPlatformError):
            scale_to_granularity(graph, platform, np.ones((2, 2)), 0.0)


@settings(max_examples=25, deadline=None)
@given(
    v=st.integers(5, 40),
    m=st.integers(2, 8),
    target=st.floats(0.1, 10.0),
    seed=st.integers(0, 500),
)
def test_granularity_scaling_property(v, m, target, seed):
    """scale_to_granularity hits any positive target exactly for any instance."""
    graph = random_dag(v, rng=seed)
    if graph.num_edges == 0:
        return
    platform = uniform_delay_platform(m, rng=seed + 1)
    E = range_exec_matrix(np.full(v, 2.0), m, rng=seed + 2)
    scaled = scale_to_granularity(graph, platform, E, target)
    assert granularity(graph, platform, scaled) == pytest.approx(target)
    assert (scaled > 0).all()


class TestSenderDependent:
    def test_rows_constant(self):
        from repro.platform.heterogeneity import sender_dependent_platform

        p = sender_dependent_platform(5, rng=0)
        d = p.delay_matrix
        for k in range(5):
            off = [d[k, h] for h in range(5) if h != k]
            assert len(set(off)) == 1  # one outgoing rate per sender

    def test_rates_in_range(self):
        from repro.platform.heterogeneity import sender_dependent_platform

        p = sender_dependent_platform(6, rate_range=(0.5, 1.0), rng=1)
        off = p.delay_matrix[~np.eye(6, dtype=bool)]
        assert (off >= 0.5).all() and (off <= 1.0).all()

    def test_schedulable(self):
        from repro.core.caft import caft
        from repro.dag.generators import random_dag
        from repro.platform.heterogeneity import sender_dependent_platform
        from repro.platform.instance import ProblemInstance

        graph = random_dag(15, rng=0)
        platform = sender_dependent_platform(5, rng=2)
        E = range_exec_matrix(np.full(15, 5.0), 5, rng=3)
        inst = ProblemInstance(graph, platform, E)
        sched = caft(inst, 1, rng=0)
        assert sched.latency() > 0

    def test_bad_range(self):
        from repro.platform.heterogeneity import sender_dependent_platform

        with pytest.raises(InvalidPlatformError):
            sender_dependent_platform(4, rate_range=(2.0, 1.0))
