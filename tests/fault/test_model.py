"""Tests for failure scenarios."""

import math

import pytest

from repro.fault.model import FailureScenario
from repro.utils.errors import ReproError


class TestConstruction:
    def test_crash_at_start(self):
        s = FailureScenario.crash_at_start([1, 3])
        assert s.failed_procs == (1, 3)
        assert s.num_failures == 2
        assert s.fail_time(1) == 0.0
        assert s.fail_time(0) == math.inf

    def test_none(self):
        s = FailureScenario.none()
        assert s.num_failures == 0
        assert s.fail_time(5) == math.inf

    def test_infinite_times_dropped(self):
        s = FailureScenario({0: math.inf, 1: 5.0})
        assert s.failed_procs == (1,)

    def test_rejects_negative_time(self):
        with pytest.raises(ReproError):
            FailureScenario({0: -1.0})

    def test_rejects_nan(self):
        with pytest.raises(ReproError):
            FailureScenario({0: math.nan})


class TestSurvives:
    def test_healthy_proc_always_survives(self):
        s = FailureScenario.crash_at_start([0])
        assert s.survives(1, 0.0, 1e12)

    def test_dead_from_start(self):
        s = FailureScenario.crash_at_start([0])
        assert not s.survives(0, 0.0, 1.0)
        assert not s.survives(0, 0.0, 0.0)  # zero-duration work at the crash

    def test_mid_execution_crash(self):
        s = FailureScenario({0: 10.0})
        assert s.survives(0, 0.0, 10.0)  # finishes exactly at the crash
        assert not s.survives(0, 0.0, 10.1)
        assert not s.survives(0, 10.0, 12.0)  # starts at the crash instant
        assert s.survives(0, 5.0, 9.0)


class TestDunder:
    def test_equality_and_hash(self):
        a = FailureScenario.crash_at_start([1, 2])
        b = FailureScenario({2: 0.0, 1: 0.0})
        assert a == b
        assert hash(a) == hash(b)
        assert a != FailureScenario.crash_at_start([1])

    def test_repr(self):
        assert "P1@0" in repr(FailureScenario.crash_at_start([1]))
        assert "none" in repr(FailureScenario.none())
