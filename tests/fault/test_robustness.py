"""Robustness (Proposition 5.2) tests — the heart of the reproduction.

Three families:

* exhaustive ε-subset checks proving the robust CAFT, FTSA and FTBAR
  tolerate every ≤ ε crash pattern;
* a *constructed counterexample* showing the literal Algorithm 5.2
  (``locking="paper"``) can be killed by a single crash on a 3-chain —
  the starvation cascade the paper's Prop. 5.2 proof overlooks;
* hypothesis-driven random sweeps of the same properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.caft import caft
from repro.dag.generators import chain, random_dag
from repro.fault.model import FailureScenario
from repro.fault.scenarios import (
    all_crash_scenarios,
    check_robustness,
    random_crash_scenario,
)
from repro.fault.simulator import replay
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from tests.conftest import make_instance


class TestScenarioGenerators:
    def test_random_scenario_size(self):
        s = random_crash_scenario(10, 3, rng=0)
        assert s.num_failures == 3
        assert all(0 <= p < 10 for p in s.failed_procs)

    def test_random_scenario_time_range(self):
        s = random_crash_scenario(10, 2, rng=0, time_range=(5.0, 9.0))
        for p in s.failed_procs:
            assert 5.0 <= s.fail_time(p) <= 9.0

    def test_random_scenario_rejects_too_many(self):
        with pytest.raises(ValueError):
            random_crash_scenario(3, 4)

    def test_all_scenarios_count(self):
        # sum_{k<=2} C(4, k) = 1 + 4 + 6
        assert sum(1 for _ in all_crash_scenarios(4, 2)) == 11

    def test_all_scenarios_exact(self):
        assert sum(1 for _ in all_crash_scenarios(4, 2, exact=True)) == 6


class TestExhaustiveRobustness:
    """Replay under every ≤ ε crash subset (small m keeps this cheap)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_caft_support_eps1(self, seed):
        inst = make_instance(num_tasks=20, num_procs=5, seed=seed)
        report = check_robustness(caft(inst, 1, rng=seed))
        assert report.robust, report.violations[:3]
        assert report.scenarios_checked == 6  # 1 + C(5,1)

    @pytest.mark.parametrize("seed", range(3))
    def test_caft_support_eps2(self, seed):
        inst = make_instance(num_tasks=18, num_procs=6, seed=seed + 50)
        report = check_robustness(caft(inst, 2, rng=seed))
        assert report.robust, report.violations[:3]

    def test_caft_support_eps3(self):
        inst = make_instance(num_tasks=15, num_procs=7, seed=123)
        report = check_robustness(caft(inst, 3, rng=9))
        assert report.robust

    @pytest.mark.parametrize("seed", range(3))
    def test_ftsa_eps2(self, seed):
        inst = make_instance(num_tasks=18, num_procs=6, seed=seed)
        assert check_robustness(ftsa(inst, 2, rng=seed)).robust

    def test_ftbar_eps2(self):
        inst = make_instance(num_tasks=15, num_procs=6, seed=3)
        assert check_robustness(ftbar(inst, 2, rng=0)).robust

    def test_worst_latency_at_least_nominal(self):
        inst = make_instance(num_tasks=20, num_procs=5)
        sched = caft(inst, 1, rng=0)
        report = check_robustness(sched)
        assert report.worst_latency >= sched.latency() - 1e-9

    def test_fine_grain_instances(self):
        """Contention-heavy instances keep the guarantee too."""
        inst = make_instance(num_tasks=20, num_procs=5, granularity=0.2, seed=77)
        assert check_robustness(caft(inst, 1, rng=0)).robust

    def test_mixed_kind_replicas_are_robust(self):
        """Saturated platform (ε+1 close to m) exercises mixed/fan-in units."""
        inst = make_instance(num_tasks=15, num_procs=5, seed=21)
        sched = caft(inst, 3, rng=2)
        kinds = {r.kind for reps in sched.replicas for r in reps}
        assert check_robustness(sched).robust
        assert "mixed" in kinds or "greedy" in kinds  # the regime is exercised


class TestPaperLockingCounterexample:
    """The literal Algorithm 5.2 is *not* ε-fault-tolerant on deep graphs.

    Construction (ε = 1): chain t0 → t1 → t2 on four processors where the
    execution costs steer the literal locking into a starvation cascade —
    both replicas of t2 transitively depend on processor P0.  The support
    discipline never does.
    """

    def build_instance(self):
        graph = chain(3, volume=10.0)
        platform = Platform.homogeneous(5, unit_delay=1.0)
        E = np.full((3, 5), 5.0)
        return ProblemInstance(graph, platform, E)

    def test_literal_variant_can_be_killed(self):
        """Somewhere in a seed sweep the literal variant dies to 1 crash."""
        killed = False
        for seed in range(30):
            inst = make_instance(num_tasks=30, num_procs=6, seed=seed)
            sched = caft(inst, 1, locking="paper", rng=seed)
            if not check_robustness(sched).robust:
                killed = True
                break
        assert killed, "expected at least one non-robust literal schedule"

    def test_support_variant_never_killed_same_instances(self):
        for seed in range(30):
            inst = make_instance(num_tasks=30, num_procs=6, seed=seed)
            sched = caft(inst, 1, rng=seed)
            assert check_robustness(sched).robust, f"seed {seed}"

    def test_cascade_mechanism(self):
        """Witness the exact mechanism: a starved channel chain."""
        for seed in range(60):
            inst = make_instance(num_tasks=30, num_procs=6, seed=seed)
            sched = caft(inst, 1, locking="paper", rng=seed)
            report = check_robustness(sched)
            if report.robust:
                continue
            scenario, dead = report.violations[0]
            result = replay(sched, scenario)
            # every dead task lost all replicas to starvation or crash
            for t in dead:
                for r in sched.replicas[t]:
                    out = result.outcome_of(r)
                    assert out.status.value in ("starved", "crashed")
            # at least one replica STARVED while its own processor survived:
            # the cascade, not a direct hit
            assert any(
                result.outcome_of(r).status.value == "starved"
                and scenario.fail_time(r.proc) == float("inf")
                for t in dead
                for r in sched.replicas[t]
            )
            return
        pytest.skip("no violation found in sweep (unexpected but not fatal)")


class TestSupportDisjointnessTheory:
    """If supports are pairwise disjoint and each unit dies only with its
    support, ε failures cannot kill all ε+1 units — verify the premise on
    real schedules: killing processors OUTSIDE a replica's support never
    starves a channel replica."""

    def test_channel_survives_if_support_alive(self):
        inst = make_instance(num_tasks=20, num_procs=6, seed=11)
        sched = caft(inst, 2, rng=1)
        rng = np.random.default_rng(0)
        for _ in range(20):
            victims = rng.choice(6, size=2, replace=False)
            scenario = FailureScenario.crash_at_start(int(v) for v in victims)
            result = replay(sched, scenario)
            for reps in sched.replicas:
                for r in reps:
                    if not (set(r.support) & set(scenario.failed_procs)):
                        out = result.outcome_of(r)
                        assert out.status.value == "completed", (r, scenario)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    v=st.integers(8, 30),
    eps=st.integers(1, 2),
)
def test_caft_robustness_property(seed, v, eps):
    """Any robust-CAFT schedule tolerates every ≤ ε crash-at-0 subset."""
    inst = make_instance(num_tasks=v, num_procs=5, seed=seed)
    sched = caft(inst, eps, rng=seed)
    report = check_robustness(sched)
    assert report.robust, report.violations[:2]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), v=st.integers(8, 25))
def test_ftsa_robustness_property(seed, v):
    inst = make_instance(num_tasks=v, num_procs=5, seed=seed)
    sched = ftsa(inst, 2, rng=seed)
    assert check_robustness(sched).robust
