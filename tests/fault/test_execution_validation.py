"""Tests for execution-result validation and trace export."""

import json

import pytest

from repro.core.caft import caft
from repro.fault.model import FailureScenario
from repro.fault.simulator import ReplicaOutcome, ReplicaStatus, replay
from repro.fault.validation import is_valid_execution, validate_execution
from repro.schedule.trace import replay_to_trace, schedule_to_trace, write_trace
from repro.schedulers.ftsa import ftsa
from repro.utils.errors import ScheduleValidationError
from tests.conftest import make_instance


class TestValidateExecution:
    def test_healthy_replays_validate(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        for algo_rng in range(3):
            sched = caft(inst, 1, rng=algo_rng)
            for scenario in (
                FailureScenario.none(),
                FailureScenario.crash_at_start([0]),
                FailureScenario({2: sched.makespan() / 2}),
            ):
                result = replay(sched, scenario)
                validate_execution(result)  # no raise

    def test_ftsa_replays_validate(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = ftsa(inst, 2, rng=0)
        for victims in ([0], [0, 1], [3, 4]):
            validate_execution(
                replay(sched, FailureScenario.crash_at_start(victims))
            )

    def test_tampered_completion_detected(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        scenario = FailureScenario.crash_at_start([0])
        result = replay(sched, scenario)
        # forge a completion on the dead processor
        for seq, out in result.replica_outcomes.items():
            if out.replica.proc == 0:
                result.replica_outcomes[seq] = ReplicaOutcome(
                    out.replica, ReplicaStatus.COMPLETED, 0.0, 1.0
                )
                break
        assert not is_valid_execution(result)

    def test_tampered_early_start_detected(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        result = replay(sched, FailureScenario.none())
        # move a remote-fed replica before its supply
        for seq, out in result.replica_outcomes.items():
            if out.replica.inputs:
                result.replica_outcomes[seq] = ReplicaOutcome(
                    out.replica, ReplicaStatus.COMPLETED, 0.0, out.replica.duration
                )
                break
        with pytest.raises(ScheduleValidationError):
            validate_execution(result)


class TestTraceExport:
    def test_schedule_trace_shape(self):
        inst = make_instance(num_tasks=12, num_procs=4)
        sched = caft(inst, 1, rng=0)
        events = schedule_to_trace(sched)
        computes = [e for e in events if e["cat"].startswith("compute")]
        sends = [e for e in events if e["cat"] == "send"]
        assert len(computes) == sum(len(r) for r in sched.replicas)
        assert len(sends) == sched.message_count()
        for e in events:
            assert e["ph"] == "X" and e["dur"] >= 0

    def test_replay_trace_drops_dead_work(self):
        inst = make_instance(num_tasks=12, num_procs=4)
        sched = caft(inst, 1, rng=0)
        result = replay(sched, FailureScenario.crash_at_start([0]))
        events = replay_to_trace(result)
        computes = [e for e in events if e["cat"].startswith("compute")]
        assert len(computes) == result.counts()["completed"]
        assert not any(
            e["pid"] == 0 and e["cat"].startswith("compute") for e in computes
        )
        # the failure marker is present
        assert any(e["cat"] == "fault" for e in events)

    def test_write_trace_file(self, tmp_path):
        inst = make_instance(num_tasks=12, num_procs=4)
        sched = caft(inst, 1, rng=0)
        path = write_trace(sched, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert isinstance(data, list) and data

    def test_write_replay_trace_file(self, tmp_path):
        inst = make_instance(num_tasks=12, num_procs=4)
        sched = caft(inst, 1, rng=0)
        result = replay(sched, FailureScenario.crash_at_start([1]))
        path = write_trace(result, tmp_path / "replay.json")
        assert json.loads(path.read_text())
