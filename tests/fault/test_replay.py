"""Tests for the crash-replay engine."""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.dag.generators import chain
from repro.fault.model import FailureScenario
from repro.fault.simulator import ReplicaStatus, crash_latency, replay
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.errors import ExecutionFailedError
from tests.conftest import make_instance


class TestNoFailureConsistency:
    """Replaying with no failures must reproduce the committed times."""

    @pytest.mark.parametrize("algo", ["heft", "ftsa", "caft", "caft-paper"])
    @pytest.mark.parametrize("model", ["oneport", "macro-dataflow"])
    def test_replay_matches_schedule(self, algo, model):
        inst = make_instance(num_tasks=25, num_procs=6, seed=4)
        sched = {
            "heft": lambda: heft(inst, model=model, rng=1),
            "ftsa": lambda: ftsa(inst, 1, model=model, rng=1),
            "caft": lambda: caft(inst, 1, model=model, rng=1),
            "caft-paper": lambda: caft(inst, 1, model=model, locking="paper", rng=1),
        }[algo]()
        result = replay(sched, FailureScenario.none())
        assert result.success
        assert result.latency() == pytest.approx(sched.latency())
        for reps in sched.replicas:
            for r in reps:
                out = result.outcome_of(r)
                assert out.status is ReplicaStatus.COMPLETED
                assert out.start == pytest.approx(r.start)
                assert out.finish == pytest.approx(r.finish)
        for e in sched.events:
            eo = result.event_outcomes[e.seq]
            assert eo.delivered
            assert eo.start == pytest.approx(e.start)
            assert eo.finish == pytest.approx(e.finish)


class TestCrashSemantics:
    def make_chain_schedule(self):
        graph = chain(3, volume=10.0)
        platform = Platform.homogeneous(4, unit_delay=1.0)
        E = np.full((3, 4), 5.0)
        inst = ProblemInstance(graph, platform, E)
        return ftsa(inst, 1, rng=0)

    def test_tasks_on_dead_proc_crash(self):
        sched = self.make_chain_schedule()
        victim = sched.replicas[0][0].proc
        result = replay(sched, FailureScenario.crash_at_start([victim]))
        assert result.success
        for reps in sched.replicas:
            for r in reps:
                if r.proc == victim:
                    assert result.outcome_of(r).status is not ReplicaStatus.COMPLETED

    def test_messages_from_dead_proc_dropped(self):
        sched = self.make_chain_schedule()
        victim = sched.replicas[0][0].proc
        result = replay(sched, FailureScenario.crash_at_start([victim]))
        for e in sched.events:
            if e.src_proc == victim:
                assert not result.event_outcomes[e.seq].delivered

    def test_messages_to_dead_proc_dropped(self):
        sched = self.make_chain_schedule()
        victim = sched.replicas[2][0].proc
        result = replay(sched, FailureScenario.crash_at_start([victim]))
        for e in sched.events:
            if e.dst_proc == victim:
                assert not result.event_outcomes[e.seq].delivered

    def test_crash_latency_helper(self):
        sched = self.make_chain_schedule()
        assert crash_latency(sched, FailureScenario.none()) == pytest.approx(
            sched.latency()
        )

    def test_too_many_failures_raise(self):
        sched = self.make_chain_schedule()  # eps = 1
        procs = {r.proc for reps in sched.replicas for r in reps}
        result = replay(sched, FailureScenario.crash_at_start(procs))
        assert not result.success
        with pytest.raises(ExecutionFailedError) as exc:
            result.latency()
        assert exc.value.dead_tasks

    def test_counts_tally(self):
        sched = self.make_chain_schedule()
        victim = sched.replicas[0][0].proc
        result = replay(sched, FailureScenario.crash_at_start([victim]))
        counts = result.counts()
        total = sum(len(reps) for reps in sched.replicas)
        assert (
            counts["completed"] + counts["crashed"] + counts["starved"] == total
        )
        assert counts["messages_delivered"] + counts["messages_dropped"] == len(
            sched.events
        )


class TestMidExecutionFailure:
    def test_work_before_failure_counts(self):
        """A processor failing late contributes everything it finished."""
        inst = make_instance(num_tasks=20, num_procs=5, seed=9)
        sched = ftsa(inst, 1, rng=2)
        victim = sched.replicas[0][0].proc
        horizon = sched.makespan()
        late = replay(sched, FailureScenario({victim: horizon + 1}))
        assert late.success
        assert late.latency() == pytest.approx(sched.latency())

    def test_failure_time_monotonicity(self):
        """Failing earlier can only kill more replicas."""
        inst = make_instance(num_tasks=20, num_procs=5, seed=9)
        sched = ftsa(inst, 1, rng=2)
        victim = max(
            range(inst.num_procs), key=lambda p: len(sched.proc_replicas[p])
        )
        horizon = sched.makespan()
        completed = []
        for t in (0.0, horizon / 2, horizon + 1):
            result = replay(sched, FailureScenario({victim: t}))
            completed.append(result.counts()["completed"])
        assert completed[0] <= completed[1] <= completed[2]


class TestCrashCanSpeedUpOrSlowDown:
    """§6: crash latency may be smaller or larger than the 0-crash latency
    because dropped messages free ports (smaller) while lost first copies
    delay starts (larger).  Both directions must be witnessed."""

    def test_both_directions_exist(self):
        faster = slower = False
        for seed in range(30):
            inst = make_instance(num_tasks=25, num_procs=5, granularity=0.4, seed=seed)
            sched = ftsa(inst, 1, rng=seed)
            base = sched.latency()
            for victim in range(inst.num_procs):
                result = replay(sched, FailureScenario.crash_at_start([victim]))
                if not result.success:
                    continue
                lat = result.latency()
                if lat < base - 1e-6:
                    faster = True
                if lat > base + 1e-6:
                    slower = True
            if faster and slower:
                break
        assert faster and slower
