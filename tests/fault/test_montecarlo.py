"""Tests for Monte-Carlo fault analysis."""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.fault.montecarlo import (
    draw_crash_pool,
    monte_carlo_crashes,
    survival_curve,
)
from repro.schedulers.ftsa import ftsa
from tests.conftest import make_instance


class TestMonteCarloCrashes:
    def test_robust_schedule_always_survives_within_budget(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = caft(inst, 2, rng=0)
        report = monte_carlo_crashes(sched, 2, samples=40, rng=1)
        assert report.survival_rate == 1.0
        assert report.samples == 40
        assert len(report.latencies) == 40
        assert report.mean_latency > 0
        assert report.max_latency >= report.mean_latency

    def test_literal_variant_fails_sometimes(self):
        inst = make_instance(num_tasks=30, num_procs=6, seed=3)
        sched = caft(inst, 1, locking="paper", rng=3)
        report = monte_carlo_crashes(sched, 1, samples=30, rng=2)
        # the headline finding: random single crashes defeat Algorithm 5.2
        assert report.survival_rate < 1.0
        assert report.failures

    def test_quantiles_ordered(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = ftsa(inst, 1, rng=0)
        report = monte_carlo_crashes(sched, 1, samples=30, rng=3)
        assert report.latency_quantile(0.1) <= report.latency_quantile(0.9)

    def test_time_range_sampling(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = caft(inst, 1, rng=0)
        horizon = sched.makespan()
        report = monte_carlo_crashes(
            sched, 1, samples=25, rng=4, time_range=(0.0, horizon)
        )
        assert report.survival_rate == 1.0  # mid-run crashes are weaker

    def test_deterministic_given_seed(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        a = monte_carlo_crashes(sched, 1, samples=20, rng=9)
        b = monte_carlo_crashes(sched, 1, samples=20, rng=9)
        assert np.array_equal(a.latencies, b.latencies)

    def test_latencies_are_ndarray(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        report = monte_carlo_crashes(sched, 1, samples=10, rng=0)
        assert isinstance(report.latencies, np.ndarray)

    def test_zero_failures_short_circuits_to_schedule_latency(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        report = monte_carlo_crashes(sched, 0, samples=5, rng=0)
        assert report.survival_rate == 1.0
        assert np.all(report.latencies == sched.latency())

    def test_rejects_too_many_failures(self):
        inst = make_instance(num_tasks=10, num_procs=5)
        sched = caft(inst, 1, rng=0)
        with pytest.raises(ValueError):
            monte_carlo_crashes(sched, 6, samples=5)

    def test_rejects_bad_samples(self):
        inst = make_instance(num_tasks=10, num_procs=5)
        sched = caft(inst, 1, rng=0)
        with pytest.raises(ValueError):
            monte_carlo_crashes(sched, 1, samples=0)


class TestSurvivalCurve:
    def test_guaranteed_prefix(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = caft(inst, 2, rng=0)
        curve = survival_curve(sched, max_failures=4, samples=25, rng=0)
        assert curve[0].survival_rate == 1.0
        assert curve[1].survival_rate == 1.0
        assert curve[2].survival_rate == 1.0  # within the epsilon budget
        assert 0.0 <= curve[4].survival_rate <= 1.0

    def test_curve_roughly_monotone(self):
        inst = make_instance(num_tasks=20, num_procs=6)
        sched = ftsa(inst, 1, rng=0)
        curve = survival_curve(sched, max_failures=5, samples=30, rng=1)
        # sampled, so allow small inversions; the endpoints must order
        assert curve[1].survival_rate >= curve[5].survival_rate - 0.2

    def test_zero_row_reports_samples(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        curve = survival_curve(sched, max_failures=2, samples=20, rng=0)
        assert curve[0].samples == 20
        assert curve[0].survived == 20
        assert np.all(curve[0].latencies == sched.latency())

    def test_samples_per_k(self):
        inst = make_instance(num_tasks=15, num_procs=5)
        sched = caft(inst, 1, rng=0)
        curve = survival_curve(
            sched, max_failures=3, samples=30, rng=0, samples_per_k=10
        )
        assert all(report.samples == 10 for report in curve.values())

    def test_shared_pool_nests_scenarios(self):
        # the k-crash scenario of sample i is a prefix of the (k+1)-crash
        # scenario: a schedule that dies under k crashes of row i cannot
        # have survived... we check the weaker paired-pool property that
        # the same seed yields identical pools across calls.
        a = draw_crash_pool(8, 12, rng=5)
        b = draw_crash_pool(8, 12, rng=5)
        assert np.array_equal(a, b)
        assert sorted(a[0].tolist()) == list(range(8))

    def test_rejects_too_many_failures(self):
        inst = make_instance(num_tasks=10, num_procs=5)
        sched = caft(inst, 1, rng=0)
        with pytest.raises(ValueError):
            survival_curve(sched, max_failures=9, samples=5)
