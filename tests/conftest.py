"""Shared fixtures: small deterministic instances used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.generators import chain, fork_join, random_dag
from repro.dag.graph import TaskGraph
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform


def make_instance(
    num_tasks: int = 20,
    num_procs: int = 5,
    granularity: float = 1.0,
    seed: int = 0,
    degree_range: tuple[int, int] = (1, 3),
) -> ProblemInstance:
    """A reproducible random instance for tests."""
    graph = random_dag(num_tasks, degree_range=degree_range, rng=seed)
    platform = uniform_delay_platform(num_procs, rng=seed + 1000)
    rng = np.random.default_rng(seed + 2000)
    base = rng.uniform(1.0, 2.0, size=num_tasks)
    exec_cost = range_exec_matrix(base, num_procs, heterogeneity=0.5, rng=rng)
    exec_cost = scale_to_granularity(graph, platform, exec_cost, granularity)
    return ProblemInstance(graph, platform, exec_cost)


@pytest.fixture
def small_instance() -> ProblemInstance:
    """20 tasks / 5 processors / granularity 1."""
    return make_instance()


@pytest.fixture
def tiny_instance() -> ProblemInstance:
    """A 4-task diamond on 3 homogeneous processors (hand-checkable)."""
    graph = fork_join(2, volume=10.0)  # t0 -> {t1, t2} -> t3
    platform = Platform.homogeneous(3, unit_delay=1.0)
    exec_cost = np.full((4, 3), 5.0)
    return ProblemInstance(graph, platform, exec_cost)


@pytest.fixture
def chain_instance() -> ProblemInstance:
    """A 5-task chain on 6 homogeneous processors."""
    graph = chain(5, volume=10.0)
    platform = Platform.homogeneous(6, unit_delay=1.0)
    exec_cost = np.full((5, 6), 5.0)
    return ProblemInstance(graph, platform, exec_cost)


@pytest.fixture
def comm_heavy_instance() -> ProblemInstance:
    """Fine-grain instance (g = 0.2): contention dominates."""
    return make_instance(granularity=0.2, seed=7)


@pytest.fixture(params=[1, 2])
def epsilon(request) -> int:
    return request.param
