"""Tests for graph generators, including hypothesis structural properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.generators import (
    chain,
    fork,
    fork_join,
    in_tree,
    join,
    layered_dag,
    out_tree,
    random_dag,
    random_out_forest,
)
from repro.utils.errors import InvalidGraphError


class TestRandomDag:
    def test_deterministic(self):
        assert random_dag(40, rng=3) == random_dag(40, rng=3)

    def test_seed_changes_graph(self):
        assert random_dag(40, rng=3) != random_dag(40, rng=4)

    def test_task_count(self):
        assert random_dag(55, rng=0).num_tasks == 55

    def test_in_degree_band(self):
        g = random_dag(100, degree_range=(1, 3), rng=1)
        for t in range(1, 100):
            assert 1 <= g.in_degree(t) <= 3

    def test_volumes_in_range(self):
        g = random_dag(50, volume_range=(50, 150), rng=2)
        for _u, _v, vol in g.edges():
            assert 50 <= vol <= 150

    def test_window_limits_edge_span(self):
        g = random_dag(60, window=5, rng=0)
        for u, v, _ in g.edges():
            assert v - u <= 5

    def test_single_task(self):
        g = random_dag(1, rng=0)
        assert g.num_tasks == 1 and g.num_edges == 0

    def test_zero_degree_allowed(self):
        g = random_dag(20, degree_range=(0, 0), rng=0)
        assert g.num_edges == 0

    def test_bad_degree_range(self):
        with pytest.raises(InvalidGraphError):
            random_dag(10, degree_range=(3, 1), rng=0)

    def test_bad_volume_range(self):
        with pytest.raises(InvalidGraphError):
            random_dag(10, volume_range=(5, 1), rng=0)


class TestLayeredDag:
    def test_deterministic(self):
        assert layered_dag(5, rng=1) == layered_dag(5, rng=1)

    def test_every_layer_feeds_forward(self):
        g = layered_dag(6, width_range=(2, 4), rng=0)
        # every non-final task must have a successor (no dangling exits)
        exits = set(g.exit_tasks)
        from repro.dag.analysis import asap_levels

        depth = asap_levels(g)
        max_depth = depth.max()
        for t in range(g.num_tasks):
            if t not in exits:
                assert g.out_degree(t) >= 1

    def test_bad_width_range(self):
        with pytest.raises(InvalidGraphError):
            layered_dag(3, width_range=(0, 2), rng=0)


class TestOutForest:
    def test_is_out_forest(self):
        for seed in range(5):
            assert random_out_forest(30, rng=seed).is_out_forest()

    def test_root_probability_one_gives_no_edges(self):
        g = random_out_forest(20, root_probability=1.0, rng=0)
        assert g.num_edges == 0

    def test_root_probability_zero_gives_tree(self):
        g = random_out_forest(20, root_probability=0.0, rng=0)
        assert g.num_edges == 19

    def test_bad_probability(self):
        with pytest.raises(InvalidGraphError):
            random_out_forest(10, root_probability=1.5)


class TestStructured:
    def test_chain_shape(self):
        g = chain(4)
        assert g.num_edges == 3
        assert g.entry_tasks == (0,) and g.exit_tasks == (3,)

    def test_fork_shape(self):
        g = fork(3)
        assert g.out_degree(0) == 3
        assert g.is_out_forest()

    def test_join_shape(self):
        g = join(3)
        assert g.in_degree(3) == 3
        assert g.is_in_forest()

    def test_fork_join_shape(self):
        g = fork_join(3)
        assert g.num_tasks == 5
        assert g.entry_tasks == (0,) and g.exit_tasks == (4,)

    def test_out_tree_counts(self):
        g = out_tree(3, branching=2)
        assert g.num_tasks == 15  # 1 + 2 + 4 + 8
        assert g.is_out_forest()

    def test_out_tree_depth_zero(self):
        g = out_tree(0)
        assert g.num_tasks == 1 and g.num_edges == 0

    def test_in_tree_mirrors_out_tree(self):
        g = in_tree(2, branching=2)
        assert g.num_tasks == 7
        assert g.is_in_forest()
        assert len(g.exit_tasks) == 1

    def test_fork_requires_child(self):
        with pytest.raises(InvalidGraphError):
            fork(0)


@settings(max_examples=30, deadline=None)
@given(
    num_tasks=st.integers(2, 60),
    lo=st.integers(1, 2),
    span=st.integers(0, 2),
    seed=st.integers(0, 10_000),
)
def test_random_dag_structural_invariants(num_tasks, lo, span, seed):
    """Any generated DAG is acyclic, respects the degree band, and its
    edges point forward in creation order."""
    g = random_dag(num_tasks, degree_range=(lo, lo + span), rng=seed)
    order = g.topological_order()  # raises on cycles
    assert len(order) == num_tasks
    for u, v, vol in g.edges():
        assert u < v
        assert vol >= 0
    for t in range(1, num_tasks):
        assert g.in_degree(t) <= lo + span
        assert g.in_degree(t) >= min(lo, t)


@settings(max_examples=20, deadline=None)
@given(num_tasks=st.integers(1, 50), seed=st.integers(0, 1000))
def test_out_forest_invariant(num_tasks, seed):
    g = random_out_forest(num_tasks, rng=seed)
    assert all(g.in_degree(t) <= 1 for t in range(num_tasks))
