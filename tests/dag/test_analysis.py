"""Tests for DAG analysis: levels, critical paths, width."""

import numpy as np
import pytest

from repro.dag.analysis import (
    asap_levels,
    bottom_levels,
    critical_path_length,
    degree_stats,
    layer_width,
    min_critical_path,
    priorities,
    top_levels,
    width,
)
from repro.dag.generators import chain, fork, fork_join, random_dag
from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform


def homogeneous_instance(graph, exec_time=5.0, delay=1.0, m=3) -> ProblemInstance:
    platform = Platform.homogeneous(m, unit_delay=delay)
    E = np.full((graph.num_tasks, m), exec_time)
    return ProblemInstance(graph, platform, E)


class TestLevelsOnChain:
    """Chain t0 -> t1 -> t2, volumes 10, exec 5, mean delay 1 => W̄ = 10."""

    @pytest.fixture
    def inst(self):
        return homogeneous_instance(chain(3, volume=10.0))

    def test_bottom_levels(self, inst):
        bl = bottom_levels(inst)
        # exit: bl = 5; middle: 5 + 10 + 5 = 20; entry: 5 + 10 + 20 = 35
        assert bl.tolist() == [35.0, 20.0, 5.0]

    def test_top_levels(self, inst):
        tl = top_levels(inst)
        # entry 0; tl(t1) = 0 + 5 + 10; tl(t2) = 15 + 5 + 10
        assert tl.tolist() == [0.0, 15.0, 30.0]

    def test_priority_constant_on_critical_path(self, inst):
        pr = priorities(inst)
        assert np.allclose(pr, 35.0)

    def test_critical_path_length(self, inst):
        assert critical_path_length(inst) == 35.0

    def test_min_critical_path_ignores_comm(self, inst):
        assert min_critical_path(inst) == 15.0


class TestLevelsOnDiamond:
    def test_fork_join_levels(self):
        inst = homogeneous_instance(fork_join(2, volume=10.0))
        bl = bottom_levels(inst)
        # exit t3: 5; middle: 5+10+5=20; entry: 5+10+20=35
        assert bl[3] == 5.0
        assert bl[1] == bl[2] == 20.0
        assert bl[0] == 35.0

    def test_mean_delay_excludes_diagonal(self):
        # With unit delay 1 on all off-diagonal pairs, mean delay is exactly 1.
        inst = homogeneous_instance(chain(2, volume=8.0))
        assert inst.mean_edge_weight(0, 1) == pytest.approx(8.0)


class TestHeterogeneousLevels:
    def test_mean_exec_used(self):
        graph = chain(2, volume=0.0)
        platform = Platform.homogeneous(2, unit_delay=1.0)
        E = np.array([[2.0, 4.0], [6.0, 10.0]])  # means: 3, 8
        inst = ProblemInstance(graph, platform, E)
        bl = bottom_levels(inst)
        assert bl.tolist() == [11.0, 8.0]

    def test_min_critical_path_uses_min_exec(self):
        graph = chain(2, volume=100.0)
        platform = Platform.homogeneous(2, unit_delay=1.0)
        E = np.array([[2.0, 4.0], [6.0, 10.0]])
        inst = ProblemInstance(graph, platform, E)
        assert min_critical_path(inst) == 8.0  # 2 + 6, no comm


class TestWidth:
    def test_chain_width_one(self):
        assert width(chain(5)) == 1

    def test_fork_width(self):
        assert width(fork(4)) == 4

    def test_fork_join_width(self):
        assert width(fork_join(3)) == 3

    def test_independent_tasks(self):
        assert width(TaskGraph(6, [])) == 6

    def test_width_at_least_layer_width(self):
        for seed in range(5):
            g = random_dag(25, rng=seed)
            assert width(g) >= layer_width(g)

    def test_z_poset_width(self):
        # 0->2, 1->2, 1->3: antichain {0,1} and {2,3}; but {0,3} also
        # independent — width is 2.
        g = TaskGraph(4, [(0, 2, 1.0), (1, 2, 1.0), (1, 3, 1.0)])
        assert width(g) == 2


class TestAsapLevels:
    def test_chain_depths(self):
        assert asap_levels(chain(4)).tolist() == [0, 1, 2, 3]

    def test_fork_join_depths(self):
        assert asap_levels(fork_join(2)).tolist() == [0, 1, 1, 2]

    def test_layer_width_fork(self):
        assert layer_width(fork(5)) == 5


class TestDegreeStats:
    def test_fork_stats(self):
        stats = degree_stats(fork(3))
        assert stats["max_out"] == 3
        assert stats["max_in"] == 1
        assert stats["mean_in"] == pytest.approx(3 / 4)

    def test_random_dag_in_degree_band(self):
        g = random_dag(200, degree_range=(1, 3), rng=0)
        stats = degree_stats(g)
        assert 1.0 <= stats["mean_in"] <= 3.0
        assert stats["max_in"] <= 3


class TestAlapSlack:
    def test_chain_has_zero_slack(self):
        from repro.dag.analysis import alap_levels, slack

        inst = homogeneous_instance(chain(3, volume=10.0))
        assert np.allclose(slack(inst), 0.0)  # a chain is all critical
        assert np.allclose(alap_levels(inst), top_levels(inst))

    def test_fork_join_slack(self):
        from repro.dag.analysis import slack

        graph = TaskGraph(4, [(0, 1, 10.0), (0, 2, 0.0), (1, 3, 10.0), (2, 3, 0.0)])
        inst = homogeneous_instance(graph)
        s = slack(inst)
        # the heavy branch (via t1) is critical; the light one (t2) has slack
        assert s[1] == pytest.approx(0.0)
        assert s[2] > 0.0

    def test_slack_nonnegative(self):
        from repro.dag.analysis import slack

        for seed in range(4):
            inst = homogeneous_instance(random_dag(20, rng=seed))
            assert (slack(inst) >= -1e-9).all()
