"""Tests for graph feature extraction."""

import numpy as np
import pytest

from repro.dag.features import (
    communication_to_computation_ratio,
    graph_features,
    ideal_speedup,
    parallelism_profile,
)
from repro.dag.generators import chain, fork, fork_join, random_dag
from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform


class TestGraphFeatures:
    def test_chain(self):
        f = graph_features(chain(5, volume=10.0))
        assert f.num_tasks == 5
        assert f.depth == 4
        assert f.width == 1
        assert f.parallelism == pytest.approx(1.0)
        assert f.mean_volume == 10.0
        assert f.num_entries == f.num_exits == 1

    def test_fork(self):
        f = graph_features(fork(4))
        assert f.depth == 1
        assert f.width == 4
        assert f.max_out_degree == 4
        assert f.num_exits == 4

    def test_fork_join(self):
        f = graph_features(fork_join(3))
        assert f.depth == 2
        assert f.width == 3
        assert f.max_in_degree == 3

    def test_edgeless(self):
        f = graph_features(TaskGraph(6, []))
        assert f.depth == 0
        assert f.width == 6
        assert f.edge_density == 0.0
        assert f.mean_volume == 0.0

    def test_density_bounds(self):
        for seed in range(4):
            f = graph_features(random_dag(20, rng=seed))
            assert 0.0 < f.edge_density <= 1.0

    def test_single_task(self):
        f = graph_features(TaskGraph(1, []))
        assert f.edge_density == 0.0
        assert f.parallelism == 1.0


class TestParallelismProfile:
    def test_chain_profile(self):
        assert parallelism_profile(chain(4)) == [1, 1, 1, 1]

    def test_fork_join_profile(self):
        assert parallelism_profile(fork_join(3)) == [1, 3, 1]

    def test_profile_sums_to_tasks(self):
        g = random_dag(30, rng=1)
        assert sum(parallelism_profile(g)) == 30


class TestInstanceFeatures:
    def make(self, volume=10.0, exec_time=5.0, delay=1.0):
        graph = chain(3, volume=volume)
        platform = Platform.homogeneous(3, unit_delay=delay)
        E = np.full((3, 3), exec_time)
        return ProblemInstance(graph, platform, E)

    def test_ccr_definition(self):
        inst = self.make(volume=10.0, exec_time=5.0, delay=1.0)
        # mean comm = 10 * 1.0; mean comp = 5 -> CCR = 2
        assert communication_to_computation_ratio(inst) == pytest.approx(2.0)

    def test_ccr_edgeless(self):
        graph = TaskGraph(3, [])
        platform = Platform.homogeneous(2)
        inst = ProblemInstance(graph, platform, np.full((3, 2), 1.0))
        assert communication_to_computation_ratio(inst) == 0.0

    def test_ideal_speedup_chain_is_one(self):
        inst = self.make()
        assert ideal_speedup(inst) == pytest.approx(1.0)

    def test_ideal_speedup_fork(self):
        graph = fork_join(4, volume=0.0)
        platform = Platform.homogeneous(4)
        inst = ProblemInstance(graph, platform, np.full((6, 4), 5.0))
        # 6 tasks of equal work over a 3-task critical path
        assert ideal_speedup(inst) == pytest.approx(2.0)
