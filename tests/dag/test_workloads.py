"""Tests for the structured application workloads."""

import pytest

from repro.dag.analysis import asap_levels, width
from repro.dag.workloads import (
    ALL_WORKLOADS,
    fft_butterfly,
    gaussian_elimination,
    stencil_1d,
    tiled_cholesky,
)
from repro.utils.errors import InvalidGraphError


class TestGaussianElimination:
    def test_task_count(self):
        # sum_{k=0}^{n-2} (1 + (n-1-k)) = (n-1)(n+2)/2
        for n in (2, 3, 5, 8):
            wl = gaussian_elimination(n)
            assert wl.num_tasks == (n - 1) * (n + 2) // 2

    def test_pivot_feeds_updates(self):
        wl = gaussian_elimination(4)
        g = wl.graph
        # P(0) is task 0; it must feed U(0,1..3)
        assert g.out_degree(0) == 3

    def test_single_exit_chain(self):
        wl = gaussian_elimination(3)
        # last step has pivot P(1) and update U(1,2)
        assert len(wl.graph.exit_tasks) >= 1

    def test_costs_positive_and_matching(self):
        wl = gaussian_elimination(5)
        assert wl.base_costs.shape == (wl.num_tasks,)
        assert (wl.base_costs > 0).all()

    def test_depth_scales_with_n(self):
        d3 = asap_levels(gaussian_elimination(3).graph).max()
        d6 = asap_levels(gaussian_elimination(6).graph).max()
        assert d6 > d3

    def test_rejects_tiny(self):
        with pytest.raises(InvalidGraphError):
            gaussian_elimination(1)


class TestFFT:
    def test_task_count(self):
        wl = fft_butterfly(8)
        assert wl.num_tasks == 4 * 8  # (log2(8)+1) layers of 8

    def test_in_degree_two_past_first_layer(self):
        wl = fft_butterfly(4)
        g = wl.graph
        for t in range(4, g.num_tasks):
            assert g.in_degree(t) == 2

    def test_width_is_n(self):
        assert width(fft_butterfly(4).graph) == 4

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidGraphError):
            fft_butterfly(6)

    def test_rejects_one_point(self):
        with pytest.raises(InvalidGraphError):
            fft_butterfly(1)


class TestStencil:
    def test_task_count(self):
        assert stencil_1d(5, 3).num_tasks == 15

    def test_interior_in_degree(self):
        wl = stencil_1d(5, 2)
        g = wl.graph
        # interior cell of sweep 1 reads 3 neighbours
        assert g.in_degree(5 + 2) == 3
        # boundary cells read 2
        assert g.in_degree(5 + 0) == 2

    def test_single_sweep_has_no_edges(self):
        assert stencil_1d(4, 1).graph.num_edges == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(InvalidGraphError):
            stencil_1d(0, 3)


class TestCholesky:
    def test_task_count(self):
        # nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk + sum_k (i-k-1 gemm)
        wl = tiled_cholesky(4)
        nt = 4
        expected = nt + nt * (nt - 1) + sum(
            max(0, i - k - 1) for k in range(nt) for i in range(k + 1, nt)
        )
        assert wl.num_tasks == expected

    def test_one_tile_is_single_task(self):
        assert tiled_cholesky(1).num_tasks == 1

    def test_gemm_cost_dominates(self):
        wl = tiled_cholesky(4)
        costs = dict(zip(wl.graph.names, wl.base_costs))
        assert costs["GEMM(0,1,2)"] > costs["POTRF(0)"]

    def test_potrf_chain_depth(self):
        wl = tiled_cholesky(4)
        names = wl.graph.names
        depth = asap_levels(wl.graph)
        potrf_depths = [depth[i] for i, n in enumerate(names) if n.startswith("POTRF")]
        assert potrf_depths == sorted(potrf_depths)
        assert potrf_depths[-1] > potrf_depths[0]


class TestRegistry:
    def test_all_workloads_run(self):
        for name, factory in ALL_WORKLOADS.items():
            wl = factory(4)
            assert wl.num_tasks >= 1
            assert wl.base_costs.shape == (wl.num_tasks,)
            wl.graph.topological_order()  # acyclic

    def test_names_match(self):
        for name, factory in ALL_WORKLOADS.items():
            assert factory(4).name == name
