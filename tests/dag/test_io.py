"""Tests for task-graph serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag.generators import random_dag
from repro.dag.graph import TaskGraph
from repro.dag.io import (
    graph_from_json,
    graph_from_text,
    graph_to_dot,
    graph_to_json,
    graph_to_text,
    load_graph,
    save_graph,
)
from repro.utils.errors import InvalidGraphError


def diamond() -> TaskGraph:
    return TaskGraph(
        4,
        [(0, 1, 5.0), (0, 2, 6.5), (1, 3, 7.0), (2, 3, 8.0)],
        names=["in", "a", "b", "out"],
    )


class TestText:
    def test_roundtrip(self):
        g = diamond()
        back = graph_from_text(graph_to_text(g))
        assert back.num_tasks == g.num_tasks
        assert sorted(back.edges()) == sorted(g.edges())

    def test_header(self):
        text = graph_to_text(diamond())
        assert text.splitlines()[0] == "4 4"

    def test_file_roundtrip(self, tmp_path):
        g = diamond()
        path = save_graph(g, tmp_path / "g.txt")
        assert load_graph(path).num_edges == 4

    def test_comments_ignored(self):
        text = "# a comment\n2 1\n0 1 3.5\n"
        g = graph_from_text(text)
        assert g.volume(0, 1) == 3.5

    def test_rejects_empty(self):
        with pytest.raises(InvalidGraphError):
            graph_from_text("")

    def test_rejects_bad_header(self):
        with pytest.raises(InvalidGraphError):
            graph_from_text("not a header\n")

    def test_rejects_edge_count_mismatch(self):
        with pytest.raises(InvalidGraphError, match="edges"):
            graph_from_text("3 2\n0 1 1.0\n")

    def test_rejects_bad_edge_line(self):
        with pytest.raises(InvalidGraphError):
            graph_from_text("2 1\n0 1\n")

    def test_exact_volume_precision(self):
        g = TaskGraph(2, [(0, 1, 0.1 + 0.2)])  # a float without short repr
        back = graph_from_text(graph_to_text(g))
        assert back.volume(0, 1) == g.volume(0, 1)


class TestJson:
    def test_roundtrip_with_names(self):
        g = diamond()
        back = graph_from_json(graph_to_json(g))
        assert back == g
        assert back.names == ("in", "a", "b", "out")


class TestDot:
    def test_contains_nodes_and_edges(self):
        dot = graph_to_dot(diamond())
        assert "digraph" in dot
        assert '"in"' in dot and '"out"' in dot
        assert "t0 -> t1" in dot
        assert 'label="5"' in dot

    def test_custom_name(self):
        assert "digraph myapp {" in graph_to_dot(diamond(), name="myapp")


@settings(max_examples=25, deadline=None)
@given(v=st.integers(1, 40), seed=st.integers(0, 1000))
def test_text_roundtrip_property(v, seed):
    g = random_dag(v, rng=seed)
    back = graph_from_text(graph_to_text(g))
    assert back.num_tasks == g.num_tasks
    assert sorted(back.edges()) == sorted(g.edges())
