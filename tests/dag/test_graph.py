"""Tests for the TaskGraph container."""

import networkx as nx
import pytest

from repro.dag.graph import TaskGraph
from repro.utils.errors import InvalidGraphError


def diamond() -> TaskGraph:
    return TaskGraph(4, [(0, 1, 5.0), (0, 2, 6.0), (1, 3, 7.0), (2, 3, 8.0)])


class TestConstruction:
    def test_counts(self):
        g = diamond()
        assert g.num_tasks == 4
        assert g.num_edges == 4

    def test_adjacency(self):
        g = diamond()
        assert g.preds(3) == (1, 2)
        assert g.succs(0) == (1, 2)
        assert g.preds(0) == ()
        assert g.succs(3) == ()

    def test_degrees(self):
        g = diamond()
        assert g.in_degree(3) == 2
        assert g.out_degree(0) == 2

    def test_volume(self):
        g = diamond()
        assert g.volume(0, 1) == 5.0
        assert g.volume(2, 3) == 8.0

    def test_missing_edge_raises(self):
        with pytest.raises(InvalidGraphError):
            diamond().volume(1, 2)

    def test_has_edge(self):
        g = diamond()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_entry_exit(self):
        g = diamond()
        assert g.entry_tasks == (0,)
        assert g.exit_tasks == (3,)

    def test_default_names(self):
        assert diamond().names == ("t0", "t1", "t2", "t3")

    def test_custom_names(self):
        g = TaskGraph(2, [(0, 1, 1.0)], names=["in", "out"])
        assert g.names == ("in", "out")

    def test_zero_volume_allowed(self):
        g = TaskGraph(2, [(0, 1, 0.0)])
        assert g.volume(0, 1) == 0.0

    def test_edges_iteration(self):
        edges = list(diamond().edges())
        assert (0, 1, 5.0) in edges
        assert len(edges) == 4


class TestValidation:
    def test_rejects_zero_tasks(self):
        with pytest.raises(InvalidGraphError):
            TaskGraph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidGraphError, match="self-loop"):
            TaskGraph(2, [(1, 1, 1.0)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(InvalidGraphError, match="duplicate"):
            TaskGraph(2, [(0, 1, 1.0), (0, 1, 2.0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidGraphError, match="out of range"):
            TaskGraph(2, [(0, 2, 1.0)])

    def test_rejects_negative_volume(self):
        with pytest.raises(InvalidGraphError, match="negative"):
            TaskGraph(2, [(0, 1, -1.0)])

    def test_rejects_cycle(self):
        with pytest.raises(InvalidGraphError, match="cycle"):
            TaskGraph(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])

    def test_rejects_two_cycle(self):
        with pytest.raises(InvalidGraphError, match="cycle"):
            TaskGraph(2, [(0, 1, 1.0), (1, 0, 1.0)])

    def test_rejects_bad_names_length(self):
        with pytest.raises(InvalidGraphError):
            TaskGraph(2, [(0, 1, 1.0)], names=["only-one"])


class TestTopologicalOrder:
    def test_respects_precedence(self):
        g = diamond()
        order = g.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]

    def test_deterministic_smallest_first(self):
        g = TaskGraph(4, [(2, 3, 1.0)])  # 0, 1 independent
        assert g.topological_order() == (0, 1, 2, 3)

    def test_includes_all_tasks(self):
        g = diamond()
        assert sorted(g.topological_order()) == [0, 1, 2, 3]


class TestShapes:
    def test_out_forest_detection(self):
        assert TaskGraph(3, [(0, 1, 1.0), (0, 2, 1.0)]).is_out_forest()
        assert not diamond().is_out_forest()

    def test_in_forest_detection(self):
        assert TaskGraph(3, [(0, 2, 1.0), (1, 2, 1.0)]).is_in_forest()
        assert not diamond().is_in_forest()

    def test_isolated_tasks_are_both(self):
        g = TaskGraph(3, [])
        assert g.is_out_forest() and g.is_in_forest()


class TestNumpyViews:
    def test_succ_csr(self):
        g = diamond()
        indptr, indices, volumes = g.succ_csr
        assert indptr.tolist() == [0, 2, 3, 4, 4]
        assert indices.tolist() == [1, 2, 3, 3]
        assert volumes.tolist() == [5.0, 6.0, 7.0, 8.0]

    def test_pred_csr(self):
        g = diamond()
        indptr, indices, volumes = g.pred_csr
        assert indptr.tolist() == [0, 0, 1, 2, 4]
        assert indices.tolist() == [0, 0, 1, 2]
        assert volumes.tolist() == [5.0, 6.0, 7.0, 8.0]

    def test_csr_matches_adjacency(self):
        g = diamond()
        indptr, indices, _ = g.succ_csr
        for t in range(g.num_tasks):
            assert tuple(indices[indptr[t]:indptr[t + 1]]) == g.succs(t)

    def test_csr_is_cached_and_readonly(self):
        g = diamond()
        a = g.succ_csr
        assert g.succ_csr is a
        with pytest.raises(ValueError):
            a[1][0] = 99

    def test_generations(self):
        g = diamond()
        gens = g.generations()
        assert [gen.tolist() for gen in gens] == [[0], [1, 2], [3]]

    def test_generations_cover_all_tasks(self):
        g = TaskGraph(5, [(0, 2, 1.0), (1, 2, 1.0), (2, 4, 1.0)])
        gens = g.generations()
        seen = sorted(t for gen in gens for t in gen.tolist())
        assert seen == list(range(5))
        # 3 is isolated: generation 0 alongside the entries
        assert 3 in gens[0].tolist()


class TestInterop:
    def test_networkx_roundtrip(self):
        g = diamond()
        back = TaskGraph.from_networkx(g.to_networkx())
        assert back == g

    def test_to_networkx_volumes(self):
        nxg = diamond().to_networkx()
        assert nxg[0][1]["volume"] == 5.0
        assert nx.is_directed_acyclic_graph(nxg)

    def test_from_networkx_bad_nodes(self):
        nxg = nx.DiGraph()
        nxg.add_edge("a", "b")
        with pytest.raises(InvalidGraphError):
            TaskGraph.from_networkx(nxg)

    def test_equality(self):
        assert diamond() == diamond()
        other = TaskGraph(4, [(0, 1, 5.0)])
        assert diamond() != other

    def test_repr(self):
        assert "v=4" in repr(diamond())
