"""Hypothesis sweep: every scheduler's output is a valid schedule.

One generator drives all schedulers across instance shapes, granularities,
platform sizes, models and ε — each produced schedule must pass the full
validator (replication, space exclusion, processor exclusivity,
precedence supplies, one-port constraints), have consistent bounds, and
respect the FTSA message ceiling.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.schedule.bounds import latency_upper_bound
from repro.schedule.metrics import message_bound_ftsa
from repro.schedule.validation import validate_schedule
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from tests.conftest import make_instance

CASES = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 50_000),
        "v": st.integers(4, 35),
        "m": st.integers(3, 8),
        "eps": st.integers(0, 2),
        "gran": st.sampled_from([0.2, 0.7, 1.0, 3.0, 8.0]),
        "degree_hi": st.integers(1, 4),
    }
)


def build(case):
    return make_instance(
        num_tasks=case["v"],
        num_procs=case["m"],
        granularity=case["gran"],
        seed=case["seed"],
        degree_range=(1, case["degree_hi"]),
    )


def common_checks(sched, expected):
    validate_schedule(sched, expected_replicas=expected)
    assert sched.latency() > 0
    assert latency_upper_bound(sched) >= sched.latency() - 1e-9
    assert sched.message_count() <= message_bound_ftsa(sched)
    assert sched.makespan() >= sched.latency() - 1e-9


@settings(max_examples=25, deadline=None)
@given(case=CASES)
def test_caft_schedule_invariants(case):
    eps = min(case["eps"], case["m"] - 1)
    inst = build(case)
    sched = caft(inst, eps, rng=case["seed"])
    common_checks(sched, eps + 1)
    # support invariant: pairwise disjoint within every task
    for reps in sched.replicas:
        seen: set[int] = set()
        for r in reps:
            assert not (r.support & seen)
            seen |= r.support


@settings(max_examples=20, deadline=None)
@given(case=CASES)
def test_caft_paper_schedule_invariants(case):
    eps = min(case["eps"], case["m"] - 1)
    inst = build(case)
    sched = caft(inst, eps, locking="paper", rng=case["seed"])
    common_checks(sched, eps + 1)


@settings(max_examples=20, deadline=None)
@given(case=CASES)
def test_ftsa_schedule_invariants(case):
    eps = min(case["eps"], case["m"] - 1)
    inst = build(case)
    common_checks(ftsa(inst, eps, rng=case["seed"]), eps + 1)


@settings(max_examples=12, deadline=None)
@given(case=CASES)
def test_ftbar_schedule_invariants(case):
    eps = min(case["eps"], case["m"] - 1)
    inst = build(case)
    common_checks(ftbar(inst, eps, rng=case["seed"]), eps + 1)


@settings(max_examples=15, deadline=None)
@given(case=CASES)
def test_heft_schedule_invariants(case):
    inst = build(case)
    common_checks(heft(inst, rng=case["seed"]), 1)


@settings(max_examples=12, deadline=None)
@given(case=CASES, window=st.integers(2, 8))
def test_caft_batch_schedule_invariants(case, window):
    eps = min(case["eps"], case["m"] - 1)
    inst = build(case)
    sched = caft_batch(inst, eps, window=window, rng=case["seed"])
    common_checks(sched, eps + 1)
