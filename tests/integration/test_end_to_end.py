"""Cross-module integration tests: full pipelines on realistic workloads."""

import numpy as np
import pytest

from repro import (
    FailureScenario,
    ProblemInstance,
    RoutedOnePortNetwork,
    Topology,
    caft,
    check_robustness,
    crash_latency,
    ftbar,
    ftsa,
    gaussian_elimination,
    heft,
    latency_upper_bound,
    random_crash_scenario,
    range_exec_matrix,
    replay,
    scale_to_granularity,
    stencil_1d,
    tiled_cholesky,
    uniform_delay_platform,
    validate_schedule,
)
from repro.fault.simulator import ReplicaStatus


def workload_instance(workload, m=6, granularity=1.0, seed=0):
    platform = uniform_delay_platform(m, rng=seed)
    E = range_exec_matrix(workload.base_costs, m, heterogeneity=0.5, rng=seed + 1)
    E = scale_to_granularity(workload.graph, platform, E, granularity)
    return ProblemInstance(workload.graph, platform, E)


class TestWorkloadPipelines:
    @pytest.mark.parametrize(
        "workload",
        [gaussian_elimination(6), stencil_1d(6, 4), tiled_cholesky(4)],
        ids=["gauss", "stencil", "cholesky"],
    )
    def test_full_pipeline(self, workload):
        inst = workload_instance(workload)
        sched = caft(inst, epsilon=1, rng=0)
        validate_schedule(sched)
        assert latency_upper_bound(sched) >= sched.latency()
        scenario = random_crash_scenario(6, 1, rng=5)
        assert crash_latency(sched, scenario) > 0

    def test_algorithms_agree_on_validity(self):
        wl = gaussian_elimination(6)
        inst = workload_instance(wl)
        for algo, expected in [
            (lambda: heft(inst, rng=0), 1),
            (lambda: ftsa(inst, 1, rng=0), 2),
            (lambda: ftbar(inst, 1, rng=0), 2),
            (lambda: caft(inst, 1, rng=0), 2),
        ]:
            validate_schedule(algo(), expected_replicas=expected)

    def test_gaussian_robustness(self):
        wl = gaussian_elimination(5)
        inst = workload_instance(wl, m=5)
        sched = caft(inst, 1, rng=3)
        assert check_robustness(sched).robust


class TestSparseTopologies:
    """§7 extension: scheduling over routed sparse interconnects."""

    @pytest.mark.parametrize(
        "topo_factory",
        [lambda: Topology.ring(6), lambda: Topology.star(6), lambda: Topology.mesh2d(2, 3)],
        ids=["ring", "star", "mesh"],
    )
    def test_caft_on_sparse(self, topo_factory):
        topo = topo_factory()
        wl = gaussian_elimination(5)
        platform = topo.to_platform()
        E = range_exec_matrix(wl.base_costs, topo.num_procs, rng=1)
        E = scale_to_granularity(wl.graph, platform, E, 1.0)
        inst = ProblemInstance(wl.graph, platform, E)
        net = RoutedOnePortNetwork(topo)
        sched = caft(inst, 1, model=net, rng=0)
        validate_schedule(sched)
        # replay consistency through the routed-network factory
        result = replay(sched, FailureScenario.none())
        assert result.latency() == pytest.approx(sched.latency())

    def test_sparse_robustness(self):
        topo = Topology.ring(5)
        wl = stencil_1d(4, 3)
        platform = topo.to_platform()
        E = range_exec_matrix(wl.base_costs, 5, rng=2)
        E = scale_to_granularity(wl.graph, platform, E, 1.0)
        inst = ProblemInstance(wl.graph, platform, E)
        sched = caft(inst, 1, model=RoutedOnePortNetwork(topo), rng=0)
        assert check_robustness(sched).robust

    def test_clique_beats_ring_under_contention(self):
        """Richer topology => no worse latency (same scheduler decisions
        modulo tie-breaks; we assert the routed ring is not faster)."""
        wl = gaussian_elimination(6)
        ring = Topology.ring(6)
        clique = Topology.clique(6)
        lats = {}
        for name, topo in (("ring", ring), ("clique", clique)):
            platform = topo.to_platform()
            E = range_exec_matrix(wl.base_costs, 6, rng=3)
            E = scale_to_granularity(wl.graph, platform, E, 0.5)
            inst = ProblemInstance(wl.graph, platform, E)
            lats[name] = caft(inst, 1, model=RoutedOnePortNetwork(topo), rng=0).latency()
        assert lats["clique"] <= lats["ring"]


class TestModelVariantsEndToEnd:
    def test_no_overlap_slower_or_equal(self):
        wl = gaussian_elimination(6)
        inst = workload_instance(wl, granularity=0.5)
        overlap = caft(inst, 1, model="oneport", rng=0).latency()
        no_overlap = caft(inst, 1, model="oneport-nooverlap", rng=0).latency()
        assert no_overlap >= overlap * 0.9  # typically strictly slower

    def test_uniport_replay_consistency(self):
        wl = stencil_1d(5, 3)
        inst = workload_instance(wl)
        sched = ftsa(inst, 1, model="uniport", rng=0)
        res = replay(sched, FailureScenario.none())
        assert res.latency() == pytest.approx(sched.latency())

    def test_insertion_policy_end_to_end(self):
        from repro.comm.oneport import OnePortNetwork

        wl = gaussian_elimination(5)
        inst = workload_instance(wl)
        net = OnePortNetwork(inst.platform, policy="insertion")
        sched = caft(inst, 1, model=net, rng=0)
        validate_schedule(sched)
        res = replay(sched, FailureScenario.none())
        assert res.latency() == pytest.approx(sched.latency())


class TestStarvationSkipSemantics:
    def test_starved_replica_does_not_block_processor(self):
        """A starved one-to-one channel must not stall later tasks on its
        processor (fail-stop is detectable; DESIGN.md)."""
        for seed in range(20):
            from tests.conftest import make_instance

            inst = make_instance(num_tasks=25, num_procs=6, seed=seed)
            sched = caft(inst, 1, rng=seed)
            for victim in range(6):
                result = replay(sched, FailureScenario.crash_at_start([victim]))
                assert result.success
                starved = [
                    out
                    for out in result.replica_outcomes.values()
                    if out.status is ReplicaStatus.STARVED
                ]
                if starved:
                    # some replica later on the same processor completed
                    r = starved[0].replica
                    later = [
                        out
                        for out in result.replica_outcomes.values()
                        if out.replica.proc == r.proc
                        and out.replica.seq > r.seq
                        and out.status is ReplicaStatus.COMPLETED
                    ]
                    if later:
                        return
        pytest.skip("no starvation-with-successor witnessed in sweep")
