"""Scenario tests transcribing the paper's worked examples.

* §5 proof (i) "deadlock/mutual exclusion": a two-task chain where naive
  cross pairing dies to one failure, while CAFT's locking survives it;
* §6 crash anecdote: with FTSA, a replica receives its input several
  times, runs on the first copy, and a crash can move its finish time in
  either direction;
* §4.2: FTSA replicates every task exactly ε+1 times and every committed
  message count stays under e(ε+1)².
"""

import numpy as np
import pytest

from repro.core.caft import caft
from repro.dag.graph import TaskGraph
from repro.fault.model import FailureScenario
from repro.fault.scenarios import check_robustness
from repro.fault.simulator import replay
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.schedulers.ftsa import ftsa


class TestDeadlockExample:
    """§5 proof (i): t1 ≺ t2, ε=1.

    "If we retain the communications P1(t1¹)→P3(t2²) and P2(t1²)→P1(t2¹),
    then the algorithm is blocked by the failure of P1.  But if we enforce
    that the only edge from P1 goes to itself, then we resist 1 failure."
    """

    def make_instance(self, m=4):
        graph = TaskGraph(2, [(0, 1, 10.0)])
        platform = Platform.homogeneous(m, unit_delay=1.0)
        E = np.full((2, m), 5.0)
        return ProblemInstance(graph, platform, E)

    def test_caft_never_cross_pairs_into_deadlock(self):
        """Whatever the seed, CAFT's schedule of the 2-chain resists any
        single failure — the mutual-exclusion locking of eq. (7)."""
        inst = self.make_instance()
        for seed in range(10):
            for locking in ("support", "paper"):
                sched = caft(inst, 1, locking=locking, rng=seed)
                report = check_robustness(sched)
                assert report.robust, (locking, seed, report.violations)

    def test_adversarial_cross_pairing_would_die(self):
        """Reproduce the paper's bad pairing by hand and confirm it is
        indeed killed by the failure of P1 — validating that the replay
        engine models exactly the deadlock the paper worries about."""
        from repro.comm.oneport import OnePortNetwork
        from repro.schedule.schedule import ScheduleBuilder

        inst = self.make_instance()
        builder = ScheduleBuilder(
            inst, OnePortNetwork(inst.platform), 1, "handmade"
        )
        t1_p0 = builder.commit(0, 0, {})            # t1 copy 1 on P0
        t1_p1 = builder.commit(0, 1, {})            # t1 copy 2 on P1
        builder.mark_task_done(0)
        # cross pairing: P0's copy feeds the replica on P2, P1's copy feeds
        # the replica on P0 — every data path runs through P0
        builder.commit(1, 2, {0: [t1_p0]}, kind="channel",
                       support=frozenset({2, 0}))
        builder.commit(1, 0, {0: [t1_p1]}, kind="channel",
                       support=frozenset({0, 1}))
        builder.mark_task_done(1)
        sched = builder.finish()
        result = replay(sched, FailureScenario.crash_at_start([0]))
        assert not result.success
        assert result.dead_tasks == (1,)

    def test_aligned_pairing_survives(self):
        """The paper's good pairing: P0's copy feeds P0 (locally)."""
        from repro.comm.oneport import OnePortNetwork
        from repro.schedule.schedule import ScheduleBuilder

        inst = self.make_instance()
        builder = ScheduleBuilder(
            inst, OnePortNetwork(inst.platform), 1, "handmade"
        )
        t1_p0 = builder.commit(0, 0, {})
        t1_p1 = builder.commit(0, 1, {})
        builder.mark_task_done(0)
        builder.commit(1, 0, {0: [t1_p0]}, kind="channel", support=frozenset({0}))
        builder.commit(1, 1, {0: [t1_p1]}, kind="channel", support=frozenset({1}))
        builder.mark_task_done(1)
        sched = builder.finish()
        for victim in range(4):
            assert replay(
                sched, FailureScenario.crash_at_start([victim])
            ).success


class TestSection6CrashAnecdote:
    """(t1 ≺ t3) ∧ (t2 ≺ t3): a crash may advance or delay t3's finish."""

    def make_instance(self):
        graph = TaskGraph(3, [(0, 2, 20.0), (1, 2, 20.0)])
        platform = Platform.homogeneous(6, unit_delay=1.0)
        E = np.full((3, 6), 5.0)
        return ProblemInstance(graph, platform, E)

    def test_replica_receives_input_multiple_times(self):
        inst = self.make_instance()
        sched = ftsa(inst, 1, rng=0)
        # some replica of t3 must be fed by more than one copy of a pred
        multi = any(
            len(evs) + (1 if p in r.local_inputs else 0) > 1
            for r in sched.replicas[2]
            for p, evs in r.inputs.items()
        )
        total_supplies = sum(
            len(evs) for r in sched.replicas[2] for evs in r.inputs.values()
        ) + sum(len(r.local_inputs) for r in sched.replicas[2])
        assert total_supplies > 2  # more than one supply per replica overall

    def test_task_starts_at_first_arrival(self):
        inst = self.make_instance()
        sched = ftsa(inst, 1, rng=0)
        for r in sched.replicas[2]:
            for p in (0, 1):
                earliest = min(
                    [e.finish for e in r.inputs.get(p, ())]
                    + ([r.local_inputs[p].finish] if p in r.local_inputs else [])
                )
                assert earliest <= r.start + 1e-9

    def test_crash_shifts_exit_finish_both_ways(self):
        rng = np.random.default_rng(0)
        earlier = later = False
        for seed in range(40):
            inst = self.make_instance()
            sched = ftsa(inst, 1, rng=seed)
            base = sched.latency()
            for victim in range(6):
                res = replay(sched, FailureScenario.crash_at_start([victim]))
                if not res.success:
                    continue
                lat = res.latency()
                earlier |= lat < base - 1e-9
                later |= lat > base + 1e-9
            if earlier and later:
                return
        pytest.skip("direction not witnessed on this micro-example")
