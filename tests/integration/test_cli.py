"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "3", "--graphs", "5"])
        assert args.number == 3 and args.graphs == 5

    def test_figure_rejects_bad_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "7"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.workload == "gaussian_elimination"
        assert args.scheduler == "caft"


class TestCampaignParser:
    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_args(self):
        args = build_parser().parse_args(
            ["campaign", "run", "2", "--graphs", "3", "--store", "/tmp/x",
             "--resume", "--executor", "socket", "--spawn-workers", "2"]
        )
        assert args.target == "2" and args.graphs == 3
        assert args.store == "/tmp/x" and args.resume
        assert args.executor == "socket" and args.spawn_workers == 2

    def test_campaign_run_accepts_spec_target(self):
        args = build_parser().parse_args(
            ["campaign", "run", "spec.json", "--override", "graphs=2"]
        )
        assert args.target == "spec.json"
        assert args.override == ["graphs=2"]

    def test_campaign_worker_address(self):
        args = build_parser().parse_args(
            ["campaign", "worker", "10.0.0.5:7077", "--max-units", "1"]
        )
        assert args.master == ("10.0.0.5", 7077)
        assert args.max_units == 1

    def test_campaign_worker_rejects_bad_address(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "worker", "nocolon"])

    def test_campaign_resume_args(self):
        args = build_parser().parse_args(["campaign", "resume", "/tmp/store"])
        assert args.target == "/tmp/store"

    def test_campaign_resume_without_store_rejected(self, capsys):
        rc = main(["campaign", "run", "1", "--graphs", "1", "--resume"])
        assert rc == 2
        assert "resume needs a persistent store" in capsys.readouterr().err

    def test_campaign_run_rejects_bad_target(self, capsys):
        rc = main(["campaign", "run", "9"])
        assert rc == 2
        assert "no figure 9" in capsys.readouterr().err

    def test_socket_flags_require_socket_executor(self, capsys):
        rc = main(["campaign", "run", "1", "--graphs", "1",
                   "--bind", "127.0.0.1:7077"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--bind" in err and "socket" in err

    def test_resume_from_directory_rejects_override(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(["campaign", "run", "1", "--graphs", "1",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        rc = main(["campaign", "resume", str(store),
                   "--override", "lease=8"])
        assert rc == 2
        assert "spec-file target" in capsys.readouterr().err


class TestCampaignCommands:
    def test_campaign_run_store_and_resume(self, capsys, tmp_path):
        store = tmp_path / "store"
        rc = main(["campaign", "run", "1", "--graphs", "1",
                   "--store", str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shape checks: OK" in out
        assert (store / "manifest.json").exists()
        assert (store / "rows.jsonl").exists()
        # Resuming a complete store reruns nothing and reports again.
        rc = main(["campaign", "resume", str(store)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "figure1" in out

    def test_campaign_run_from_spec_with_override_precedence(
        self, capsys, tmp_path
    ):
        """Spec file < explicit flags < --override, and the stored rows
        reflect the final values."""
        from repro.experiments import CampaignSpec, RunStore, apply_overrides, figure_spec

        store = tmp_path / "store"
        spec = apply_overrides(
            figure_spec(1),
            {"graphs": 3, "config.granularities": [0.4, 1.2],
             "config.task_range": [14, 18]},
        )
        path = tmp_path / "campaign.json"
        path.write_text(spec.to_json())

        # --override graphs=1 beats the file's graphs=3
        rc = main(["campaign", "run", str(path), "--store", str(store),
                   "--override", "graphs=1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shape checks:" in out
        with RunStore(store) as st:
            # 2 granularities x 1 graph: the override won
            assert len(st) == 2

    def test_campaign_resume_from_spec_file(self, capsys, tmp_path):
        from repro.experiments import apply_overrides, figure_spec

        store = tmp_path / "store"
        spec = apply_overrides(
            figure_spec(1),
            {"graphs": 1, "config.granularities": [0.4],
             "config.task_range": [14, 18],
             "store.directory": str(store)},
        )
        path = tmp_path / "campaign.json"
        path.write_text(spec.to_json())
        assert main(["campaign", "run", str(path)]) == 0
        capsys.readouterr()
        # resuming via the spec file re-reports without re-running
        rc = main(["campaign", "resume", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "figure1" in out

    def test_campaign_run_refuses_dirty_store_without_resume(
        self, capsys, tmp_path
    ):
        store = tmp_path / "store"
        assert main(["campaign", "run", "1", "--graphs", "1",
                     "--store", str(store)]) == 0
        capsys.readouterr()
        from repro.experiments import StoreError

        with pytest.raises(StoreError, match="resume"):
            main(["campaign", "run", "1", "--graphs", "1",
                  "--store", str(store)])


class TestCommands:
    def test_demo_runs(self, capsys):
        rc = main(
            ["demo", "--size", "4", "--procs", "4", "--epsilon", "1", "--crash", "1",
             "--width", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "latency=" in out
        assert "replay under" in out

    def test_demo_heft(self, capsys):
        rc = main(["demo", "--scheduler", "heft", "--size", "4", "--procs", "4"])
        assert rc == 0
        assert "heft" in capsys.readouterr().out

    def test_demo_all_workloads(self, capsys):
        for wl in ("fft_butterfly", "stencil_1d", "tiled_cholesky"):
            rc = main(["demo", "--workload", wl, "--size", "4", "--procs", "4"])
            assert rc == 0

    def test_prop51_runs(self, capsys):
        rc = main(["prop51", "--trials", "2", "--tasks", "20", "--procs", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Proposition 5.1 holds" in out

    def test_figure_tiny(self, capsys, tmp_path):
        out_csv = tmp_path / "fig.csv"
        rc = main(["figure", "1", "--graphs", "1", "--out", str(out_csv)])
        out = capsys.readouterr().out
        assert "figure1 (a)" in out
        assert "shape checks:" in out
        assert out_csv.exists()


class TestNewSubcommands:
    def test_robustness_exhaustive(self, capsys):
        rc = main(
            ["robustness", "--size", "4", "--procs", "5", "--epsilon", "1",
             "--exhaustive", "--samples", "10", "--max-failures", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "ROBUST" in out
        assert "survival curve" in out

    def test_robustness_epsilon_beyond_max_failures(self, capsys):
        # epsilon > max-failures must not KeyError: the guarantee check
        # clamps to the sampled range
        rc = main(
            ["robustness", "--size", "4", "--procs", "6", "--epsilon", "3",
             "--samples", "5", "--max-failures", "2", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        assert "survival curve" in out

    def test_robustness_literal_can_fail(self, capsys):
        # the literal variant has no guarantee; exit code reflects the curve
        rc = main(
            ["robustness", "--workload", "stencil_1d", "--size", "6",
             "--procs", "6", "--epsilon", "2", "--locking", "paper",
             "--samples", "10", "--max-failures", "2", "--seed", "0"]
        )
        assert rc in (0, 1)

    def test_trace_export(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        rc = main(
            ["trace", "--size", "4", "--procs", "4", "--out", str(out),
             "--crash", "1"]
        )
        assert rc == 0
        assert out.exists()
        assert (tmp_path / "t.crash.json").exists()

    def test_sweep_heterogeneity(self, capsys):
        rc = main(["sweep", "heterogeneity", "--graphs", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "norm_latency vs h" in out

    def test_figure_html(self, capsys, tmp_path):
        html_out = tmp_path / "fig.html"
        rc = main(["figure", "1", "--graphs", "1", "--html", str(html_out)])
        assert html_out.exists()
        assert "<svg" in html_out.read_text()

    def test_figure_html_multi_scenario_writes_tagged_reports(
        self, capsys, tmp_path
    ):
        html_out = tmp_path / "fig.html"
        main(["figure", "1", "--graphs", "1", "--html", str(html_out),
              "--override", 'topologies=["ring"]',
              "--override", "config.granularities=[0.4]",
              "--override", "config.task_range=[14,18]"])
        # one report per scenario, none silently dropped
        assert (tmp_path / "fig.oneport-clique-append.html").exists()
        assert (tmp_path / "fig.routed-oneport-ring-append.html").exists()
        assert not html_out.exists()

    def test_compare_subcommand(self, capsys):
        rc = main(
            ["compare", "--size", "4", "--procs", "5", "--epsilon", "1",
             "--samples", "5"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "caft" in out and "ftsa" in out and "surv" in out
