"""Smoke tests running every example script and shipped spec end to end.

Everything here carries the ``examples`` marker (tier-1; run alone with
``-m examples``): every ``examples/*.py`` script executes at tiny
settings, every shipped figure spec loads and runs, and a completeness
check fails when a new example lands without a smoke test — so API
drift breaks the user-facing surface loudly, not silently.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


@pytest.mark.examples
class TestExamples:
    def test_every_example_has_a_smoke_test(self):
        """A new examples/*.py without a test here must fail loudly."""
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            name.removeprefix("test_") + ".py"
            for name in dir(type(self))
            if name.startswith("test_") and name != "test_every_example_has_a_smoke_test"
        }
        assert scripts == covered, (
            f"examples without a smoke test: {sorted(scripts - covered)}; "
            f"tests without a script: {sorted(covered - scripts)}"
        )

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "latency (0 crash)" in out
        assert out.count("completes=True") == 6  # every crash survived

    def test_linear_algebra_pipeline(self, capsys):
        out = run_example("linear_algebra_pipeline.py", capsys=capsys)
        assert "gaussian_elimination" in out
        assert "tiled_cholesky" in out
        assert "price of fault tolerance" in out

    def test_cluster_failures(self, capsys):
        out = run_example("cluster_failures.py", capsys=capsys)
        assert "crash patterns survive" in out
        assert "literal Algorithm 5.2" in out

    def test_sparse_cluster(self, capsys):
        out = run_example("sparse_cluster.py", capsys=capsys)
        assert "clique" in out and "ring" in out
        # the clique row is the 1.00x baseline
        assert "1.00x" in out
        # the spec-driven topology campaign, one row per scenario x algo
        assert "campaign grid: 3 scenarios" in out
        assert "routed-oneport/torus" in out

    def test_campaign_spec(self, capsys):
        out = run_example("campaign_spec.py", capsys=capsys)
        assert "0 units re-run, rows identical: True" in out
        assert "executor='process'" in out
        assert "typos fail loudly" in out and "'graps'" in out

    @pytest.mark.distributed
    def test_distributed_campaign(self, capsys):
        out = run_example("distributed_campaign.py", capsys=capsys)
        assert "2 spawned local workers" in out
        assert "rows identical: True" in out
        assert "distributed rows == serial rows: True" in out

    def test_reproduce_figure(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = run_example("reproduce_figure.py", argv=["1", "1"], capsys=capsys)
        assert "average overhead" in out
        assert (tmp_path / "results" / "figure1_example.csv").exists()

    def test_million_row_campaign(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXAMPLE_ROWS", "2000")
        out = run_example("million_row_campaign.py", capsys=capsys)
        assert "-> 'columnar' store" in out
        assert "reopened as ColumnarStore" in out
        assert "caft @ g=1.6" in out
        # the streaming view renders the full comparison table
        assert "win%/ratio vs caft" in out
        assert "sealed chunks" in out
        assert "pruned query matched" in out

    def test_compare_algorithms(self, capsys):
        out = run_example("compare_algorithms.py", capsys=capsys)
        assert "parallelism profile" in out
        assert "surv" in out
        assert "caft-paper" in out


@pytest.mark.examples
class TestShippedSpecs:
    """Every spec file shipped with the package runs at tiny settings."""

    def _tiny(self, spec):
        from repro.experiments import apply_overrides

        return apply_overrides(
            spec,
            {
                "graphs": 1,
                "config.granularities": [0.6, 1.4],
                "config.task_range": [12, 16],
            },
        )

    def test_all_shipped_specs_are_covered(self):
        from repro.experiments import FIGURES, shipped_spec_paths

        names = {p.stem for p in shipped_spec_paths()}
        assert names == {f"figure{n}" for n in FIGURES} | {"figure_online"}

    @pytest.mark.parametrize("number", [1, 2, 3, 4, 5, 6])
    def test_shipped_figure_spec_runs(self, number):
        from repro.experiments import Campaign, figure_spec

        spec = self._tiny(figure_spec(number))
        handle = Campaign(spec).run()
        result = handle.result()
        assert result.config.name == f"figure{number}"
        assert len(result.reps) == spec.grid().total_units
        # the aggregated view has every per-algorithm column
        row = result.rows()[0]
        for algo in result.config.algorithms:
            assert f"{algo}_latency0" in row

    def test_shipped_online_spec_runs(self):
        from repro.experiments import (
            Campaign,
            CampaignSpec,
            apply_overrides,
            check_online_shape,
            render_online,
            shipped_spec_paths,
        )

        path = next(
            p for p in shipped_spec_paths() if p.stem == "figure_online"
        )
        spec = apply_overrides(
            CampaignSpec.load(path),
            {
                "graphs": 1,
                "config.granularities": [0.01, 0.02],
                "config.task_range": [12, 16],
            },
        )
        result = Campaign(spec).run().result()
        assert result.config.name == "figure_online"
        assert result.config.arrival is not None
        assert len(result.reps) == spec.grid().total_units
        row = result.rows()[0]
        for algo in result.config.algorithms:
            assert f"{algo}_response_mean" in row
        assert check_online_shape(result).ok
        assert "throughput" in render_online(result)
