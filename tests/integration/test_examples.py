"""Smoke tests running every example script end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys=capsys)
        assert "latency (0 crash)" in out
        assert out.count("completes=True") == 6  # every crash survived

    def test_linear_algebra_pipeline(self, capsys):
        out = run_example("linear_algebra_pipeline.py", capsys=capsys)
        assert "gaussian_elimination" in out
        assert "tiled_cholesky" in out
        assert "price of fault tolerance" in out

    def test_cluster_failures(self, capsys):
        out = run_example("cluster_failures.py", capsys=capsys)
        assert "crash patterns survive" in out
        assert "literal Algorithm 5.2" in out

    def test_sparse_cluster(self, capsys):
        out = run_example("sparse_cluster.py", capsys=capsys)
        assert "clique" in out and "ring" in out
        # the clique row is the 1.00x baseline
        assert "1.00x" in out
        # the grid-driven topology campaign, one row per scenario x algo
        assert "campaign grid: 3 scenarios" in out
        assert "routed-oneport/torus" in out

    @pytest.mark.distributed
    def test_distributed_campaign(self, capsys):
        out = run_example("distributed_campaign.py", capsys=capsys)
        assert "2 spawned local workers" in out
        assert "rows identical: True" in out
        assert "distributed rows == serial rows: True" in out

    def test_reproduce_figure(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = run_example("reproduce_figure.py", argv=["1", "1"], capsys=capsys)
        assert "average overhead" in out
        assert (tmp_path / "results" / "figure1_example.csv").exists()

    def test_compare_algorithms(self, capsys):
        out = run_example("compare_algorithms.py", capsys=capsys)
        assert "parallelism profile" in out
        assert "surv" in out
        assert "caft-paper" in out
