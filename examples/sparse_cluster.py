"""Scheduling over sparse interconnects (the paper's §7 extension).

An FFT butterfly is mapped onto 9-processor clusters wired as a clique, a
ring, a star and a 3x3 mesh.  Messages hold every physical link along
their static shortest-delay route, so sparse wiring means more contention:
the script quantifies how much latency each topology costs relative to
the clique, for both the fault-free and the fault-tolerant schedule.

Run:  python examples/sparse_cluster.py
"""

import numpy as np

from repro import (
    ProblemInstance,
    RoutedOnePortNetwork,
    Topology,
    caft,
    fft_butterfly,
    range_exec_matrix,
    scale_to_granularity,
)

PROCS = 9


def topologies() -> dict[str, Topology]:
    return {
        "clique": Topology.clique(PROCS),
        "mesh3x3": Topology.mesh2d(3, 3),
        "ring": Topology.ring(PROCS),
        "star": Topology.star(PROCS),
    }


def main() -> None:
    wl = fft_butterfly(8)
    print(f"workload: {wl.name} ({wl.num_tasks} tasks, {wl.graph.num_edges} edges)")
    print(f"{'topology':9s} {'links':>6} {'eps':>4} {'latency':>9} {'msgs':>6} {'vs clique':>10}")

    baseline: dict[int, float] = {}
    for name, topo in topologies().items():
        platform = topo.to_platform()
        exec_cost = range_exec_matrix(wl.base_costs, PROCS, heterogeneity=0.5, rng=1)
        exec_cost = scale_to_granularity(wl.graph, platform, exec_cost, 1.0)
        instance = ProblemInstance(wl.graph, platform, exec_cost)
        for eps in (0, 1):
            sched = caft(instance, eps, model=RoutedOnePortNetwork(topo), rng=0)
            lat = sched.latency()
            if name == "clique":
                baseline[eps] = lat
            rel = lat / baseline[eps]
            print(
                f"{name:9s} {len(topo.links()):>6} {eps:>4} {lat:>9.1f} "
                f"{sched.message_count():>6} {rel:>9.2f}x"
            )


if __name__ == "__main__":
    main()
