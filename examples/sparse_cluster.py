"""Scheduling over sparse interconnects (the paper's §7 extension).

An FFT butterfly is mapped onto 9-processor clusters wired as a clique, a
ring, a star and a 3x3 mesh.  Messages hold every physical link along
their static shortest-delay route, so sparse wiring means more contention:
the script quantifies how much latency each topology costs relative to
the clique, for both the fault-free and the fault-tolerant schedule.

The second half asks the same question over *random* workloads: one
declarative :class:`CampaignSpec` expands a base campaign along the
topology axis (clique / ring / torus) — no per-topology campaign loops —
and, because scenario expansion keeps the instance seeds, every topology
schedules the *same* random DAGs, so the comparison table is paired.

Run:  python examples/sparse_cluster.py
"""

import numpy as np

from repro import (
    ProblemInstance,
    RoutedOnePortNetwork,
    Topology,
    caft,
    fft_butterfly,
    range_exec_matrix,
    scale_to_granularity,
)
from repro.experiments import (
    Campaign,
    CampaignSpec,
    ExperimentConfig,
    campaign_comparison_table,
)

PROCS = 9


def topologies() -> dict[str, Topology]:
    return {
        "clique": Topology.clique(PROCS),
        "mesh3x3": Topology.mesh2d(3, 3),
        "ring": Topology.ring(PROCS),
        "star": Topology.star(PROCS),
    }


def topology_campaign() -> None:
    """One spec, three interconnects, paired random instances."""
    base = ExperimentConfig(
        name="sparse-demo",
        granularities=(1.0,),
        num_procs=PROCS,
        epsilon=1,
        crashes=1,
        num_graphs=3,
        task_range=(18, 24),
    )
    # The whole campaign as data: base scenario + a topology axis.  The
    # spec is a file away from a distributed run — spec.save("sparse.json")
    # then `repro-ftsched campaign run sparse.json --executor process`.
    spec = CampaignSpec(config=base, topologies=("ring", "torus"))
    grid = spec.grid()
    print(f"\ncampaign grid: {len(grid.configs)} scenarios x "
          f"{base.num_graphs} shared random graphs "
          f"({grid.total_units} work units)")
    handle = Campaign(spec).run()
    rows = [row for result in handle.results for row in result.rep_rows()]
    print(campaign_comparison_table(rows, baseline="caft"))


def main() -> None:
    wl = fft_butterfly(8)
    print(f"workload: {wl.name} ({wl.num_tasks} tasks, {wl.graph.num_edges} edges)")
    print(f"{'topology':9s} {'links':>6} {'eps':>4} {'latency':>9} {'msgs':>6} {'vs clique':>10}")

    baseline: dict[int, float] = {}
    for name, topo in topologies().items():
        platform = topo.to_platform()
        exec_cost = range_exec_matrix(wl.base_costs, PROCS, heterogeneity=0.5, rng=1)
        exec_cost = scale_to_granularity(wl.graph, platform, exec_cost, 1.0)
        instance = ProblemInstance(wl.graph, platform, exec_cost)
        for eps in (0, 1):
            sched = caft(instance, eps, model=RoutedOnePortNetwork(topo), rng=0)
            lat = sched.latency()
            if name == "clique":
                baseline[eps] = lat
            rel = lat / baseline[eps]
            print(
                f"{name:9s} {len(topo.links()):>6} {eps:>4} {lat:>9.1f} "
                f"{sched.message_count():>6} {rel:>9.2f}x"
            )

    topology_campaign()


if __name__ == "__main__":
    main()
