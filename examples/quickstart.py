"""Quickstart: schedule a random DAG fault-tolerantly and survive a crash.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FailureScenario,
    ProblemInstance,
    caft,
    latency_upper_bound,
    normalized_latency,
    random_dag,
    range_exec_matrix,
    render_gantt,
    replay,
    scale_to_granularity,
    uniform_delay_platform,
    validate_schedule,
)


def main() -> None:
    # 1. An application: 30 tasks, 1-3 inputs each, 50-150 data units per edge.
    graph = random_dag(30, degree_range=(1, 3), volume_range=(50, 150), rng=1)

    # 2. A platform: 6 heterogeneous processors, link delays in [0.5, 1].
    platform = uniform_delay_platform(6, delay_range=(0.5, 1.0), rng=2)

    # 3. Execution costs: per-task base cost spread over processors, then
    #    scaled so computation/communication balance (granularity) is 1.
    base = np.random.default_rng(3).uniform(1.0, 2.0, size=30)
    exec_cost = range_exec_matrix(base, 6, heterogeneity=0.5, rng=4)
    exec_cost = scale_to_granularity(graph, platform, exec_cost, target=1.0)

    instance = ProblemInstance(graph, platform, exec_cost)

    # 4. Schedule with CAFT under the bi-directional one-port model,
    #    tolerating any single fail-stop processor failure (epsilon = 1).
    schedule = caft(instance, epsilon=1, rng=0)
    validate_schedule(schedule)

    print(render_gantt(schedule, width=90))
    print(f"latency (0 crash)   : {schedule.latency():8.1f}")
    print(f"guaranteed bound    : {latency_upper_bound(schedule):8.1f}")
    print(f"normalized latency  : {normalized_latency(schedule):8.2f}")
    print(f"messages committed  : {schedule.message_count():8d}")

    # 5. Kill any processor — the application still completes.
    for victim in range(6):
        result = replay(schedule, FailureScenario.crash_at_start([victim]))
        print(
            f"crash P{victim}: completes={result.success} "
            f"latency={result.latency():8.1f} "
            f"(dropped {result.counts()['messages_dropped']} messages)"
        )


if __name__ == "__main__":
    main()
