"""A campaign as a file: write a spec, run it, resume it, override it.

The whole campaign stack — scenario axes, executor, store backend,
lease policy, reps, seeds — is described by one serializable
:class:`CampaignSpec`.  This script:

1. builds a small figure-1 campaign as a spec and saves it to JSON
   (TOML works identically — change the suffix);
2. runs it through the :class:`Campaign` facade, watching progress
   events, with every row persisted to the spec's store directory;
3. resumes from the spec file alone — zero units re-run, proving the
   file + store pair is the entire campaign state (the CLI equivalents:
   ``repro-ftsched campaign run spec.json`` / ``campaign resume
   spec.json``);
4. applies a dotted-key override (what ``--override KEY=VALUE`` does)
   and shows that a typo in a spec is a loud, key-named error.

Run:  python examples/campaign_spec.py
"""

import tempfile
from pathlib import Path

from repro.experiments import (
    Campaign,
    CampaignConfigError,
    CampaignSpec,
    apply_overrides,
    figure_spec,
    panel_c,
)


def small_figure1_spec(store_dir: str) -> CampaignSpec:
    """The shipped figure-1 spec, shrunk to demo scale by overrides."""
    return apply_overrides(
        figure_spec(1),
        {
            "graphs": 2,
            "config.granularities": [0.4, 1.0, 1.6],
            "config.task_range": [20, 30],
            "store.directory": store_dir,
        },
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = str(Path(tmp) / "store")
        spec = small_figure1_spec(store_dir)

        path = spec.save(Path(tmp) / "campaign.json")
        print(f"campaign described by {path.name}:")
        print(f"  {spec.grid().total_units} work units, "
              f"executor={spec.executor.kind!r}, "
              f"store={spec.store.resolved_backend!r}")

        events = []
        handle = Campaign.from_file(path).run(progress=events.append)
        print(f"ran in {handle.elapsed:.1f}s "
              f"({sum(e.kind == 'unit' for e in events)} unit events)")
        print()
        print(panel_c(handle.result()))

        # Resume from the file alone: every unit is already in the
        # store, so nothing executes — a killed campaign would pick up
        # exactly where it stopped.
        resumed = Campaign.from_file(path).resume()
        reran = sum(e.kind == "unit" for e in resumed.events)
        print(f"resume from spec file: {reran} units re-run, rows identical: "
              f"{resumed.result().rows() == handle.result().rows()}")

    # Overrides route through the same serialized form as the file, so
    # `--override executor.kind=process` and editing the spec agree.
    pooled = apply_overrides(spec, {"executor.kind": "process",
                                    "executor.workers": 2,
                                    "store.directory": None})
    print(f"override -> executor={pooled.executor.kind!r}, "
          f"workers={pooled.executor.workers}")

    try:
        apply_overrides(spec, {"graps": 3})
    except CampaignConfigError as exc:
        print(f"typos fail loudly: {exc}")


if __name__ == "__main__":
    main()
