"""Crash campaign: how a static fault-tolerant schedule behaves when
processors actually die.

A stencil sweep (the paper's fine-grain regime) is scheduled with CAFT for
ε = 2; the script then replays the schedule under *every* 1- and 2-crash
pattern and reports the latency distribution, plus mid-execution failures.
Finally it demonstrates the reproduction's headline finding: the literal
Algorithm 5.2 (``locking="paper"``) loses tasks under single crashes that
the robust support discipline survives by construction.

Run:  python examples/cluster_failures.py
"""

import itertools

import numpy as np

from repro import (
    FailureScenario,
    ProblemInstance,
    caft,
    range_exec_matrix,
    replay,
    scale_to_granularity,
    stencil_1d,
    uniform_delay_platform,
)

PROCS = 8


def build_instance(seed: int = 0) -> ProblemInstance:
    wl = stencil_1d(cells=8, steps=6)
    platform = uniform_delay_platform(PROCS, rng=seed)
    exec_cost = range_exec_matrix(wl.base_costs, PROCS, heterogeneity=0.5, rng=seed + 1)
    exec_cost = scale_to_granularity(wl.graph, platform, exec_cost, 0.6)
    return ProblemInstance(wl.graph, platform, exec_cost)


def crash_sweep(schedule, crashes: int) -> list[float]:
    latencies = []
    for procs in itertools.combinations(range(PROCS), crashes):
        result = replay(schedule, FailureScenario.crash_at_start(procs))
        latencies.append(result.latency())  # raises if the schedule failed
    return latencies


def main() -> None:
    instance = build_instance()
    schedule = caft(instance, epsilon=2, rng=0)
    base = schedule.latency()
    print(f"schedule: {schedule}")
    print(f"0-crash latency: {base:.1f}")

    for crashes in (1, 2):
        lats = np.array(crash_sweep(schedule, crashes))
        print(
            f"\nall {len(lats)} {crashes}-crash patterns survive; latency "
            f"min={lats.min():.1f} mean={lats.mean():.1f} max={lats.max():.1f} "
            f"(0-crash {base:.1f})"
        )
        faster = int((lats < base - 1e-9).sum())
        slower = int((lats > base + 1e-9).sum())
        print(
            f"  {faster} patterns finish EARLIER than the 0-crash schedule "
            f"(dropped messages free ports), {slower} finish later"
        )

    print("\nmid-execution failures (processor dies at time t):")
    victim = schedule.proc_replicas.index(
        max(schedule.proc_replicas, key=len)
    )
    for frac in (0.0, 0.25, 0.5, 1.0):
        t = frac * schedule.makespan()
        result = replay(schedule, FailureScenario({victim: t}))
        counts = result.counts()
        print(
            f"  P{victim} dies at {t:8.1f}: latency={result.latency():8.1f} "
            f"completed={counts['completed']:3d} crashed={counts['crashed']:3d} "
            f"starved={counts['starved']:3d}"
        )

    print("\nliteral Algorithm 5.2 (paper locking) under the same single crashes:")
    literal = caft(instance, epsilon=2, locking="paper", rng=0)
    dead = 0
    for p in range(PROCS):
        result = replay(literal, FailureScenario.crash_at_start([p]))
        if not result.success:
            dead += 1
            print(f"  crash P{p}: FAILS — tasks {result.dead_tasks[:6]} lose all replicas")
    if dead == 0:
        print("  (this instance happens to survive; most random instances do not)")
    print(f"  -> {dead}/{PROCS} single crashes defeat the literal variant; "
          f"the support variant survives all of them by construction.")


if __name__ == "__main__":
    main()
