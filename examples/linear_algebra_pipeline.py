"""Fault-tolerant scheduling of dense linear-algebra kernels.

The motivating workload of the heterogeneous-scheduling literature:
Gaussian elimination and tiled Cholesky DAGs mapped onto a small
heterogeneous cluster.  The script compares all four algorithms and shows
the latency price of increasing the tolerated failure count ε — the
fault-tolerance/latency trade-off the paper's §6 discusses.

Run:  python examples/linear_algebra_pipeline.py
"""

import numpy as np

from repro import (
    ProblemInstance,
    caft,
    ftbar,
    ftsa,
    gaussian_elimination,
    heft,
    normalized_latency,
    range_exec_matrix,
    scale_to_granularity,
    summarize,
    tiled_cholesky,
    uniform_delay_platform,
)

PROCS = 8


def build_instance(workload, granularity: float, seed: int) -> ProblemInstance:
    platform = uniform_delay_platform(PROCS, rng=seed)
    exec_cost = range_exec_matrix(
        workload.base_costs, PROCS, heterogeneity=0.75, rng=seed + 1
    )
    exec_cost = scale_to_granularity(workload.graph, platform, exec_cost, granularity)
    return ProblemInstance(workload.graph, platform, exec_cost)


def compare_algorithms(instance: ProblemInstance, epsilon: int) -> None:
    print(f"\n  algorithm comparison (eps={epsilon}):")
    print(f"  {'algorithm':12s} {'latency':>9} {'bound':>9} {'SLR':>6} {'msgs':>6}")
    rows = [
        ("heft (eps=0)", heft(instance, rng=0)),
        ("ftsa", ftsa(instance, epsilon, rng=0)),
        ("ftbar", ftbar(instance, epsilon, rng=0)),
        ("caft", caft(instance, epsilon, rng=0)),
    ]
    for name, sched in rows:
        rep = summarize(sched)
        print(
            f"  {name:12s} {rep.latency:>9.1f} {rep.upper_bound:>9.1f} "
            f"{rep.normalized_latency:>6.2f} {rep.messages:>6d}"
        )


def tolerance_price(instance: ProblemInstance) -> None:
    print("\n  the price of fault tolerance (caft):")
    base = caft(instance, 0, rng=0).latency()
    for eps in range(0, 4):
        lat = caft(instance, eps, rng=0).latency()
        print(
            f"  eps={eps}: latency={lat:9.1f}  overhead={100 * (lat - base) / base:6.1f}%"
        )


def main() -> None:
    for workload, granularity in (
        (gaussian_elimination(8), 0.8),
        (tiled_cholesky(5), 1.5),
    ):
        print(f"\n=== {workload.name} ({workload.num_tasks} tasks, "
              f"{workload.graph.num_edges} edges) ===")
        instance = build_instance(workload, granularity, seed=10)
        compare_algorithms(instance, epsilon=1)
        tolerance_price(instance)


if __name__ == "__main__":
    main()
