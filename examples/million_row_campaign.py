"""Million-row campaigns on the columnar backend, queried without loading.

The JSONL store parses every row just to open; at campaign scale that is
the bottleneck, not the experiments.  The columnar backend seals results
into NumPy chunk files with a footer index, so opening is O(tail) and
queries prune whole chunks before touching a byte of data.  This script:

1. runs a real (small) campaign with ``store.backend = "columnar"`` in
   its spec — one override away from JSONL, same rows bit-for-bit;
2. re-opens the directory with :func:`open_store` (the backend is
   sniffed from the files on disk) and streams filtered rows through
   ``iter_rows(where=..., columns=...)`` without materializing the
   campaign;
3. renders the per-scenario comparison table from a
   :class:`StoreCampaignView` — report-layer output straight off the
   store, nothing held in memory;
4. bulk-appends a synthetic sweep with a small ``chunk_rows`` to show
   chunks sealing and chunk-pruned queries at scale.

Row count for step 4 defaults to demo scale; rerun with
``REPRO_EXAMPLE_ROWS=1000000 python examples/million_row_campaign.py``
for the real thing (the guard bench ``benchmarks/bench_store.py`` does
this nightly-style, with regression gates).

Run:  python examples/million_row_campaign.py
"""

import os
import tempfile
import time
from pathlib import Path

from repro.experiments import (
    Campaign,
    ColumnarStore,
    StoreCampaignView,
    apply_overrides,
    campaign_comparison_table,
    figure_spec,
    open_store,
)
from repro.experiments.grid import unit_id_for
from repro.experiments.harness import RepResult


def run_columnar_campaign(store_dir: str):
    """A shipped figure spec at demo scale, persisted columnar."""
    spec = apply_overrides(
        figure_spec(1),
        {
            "graphs": 2,
            "config.granularities": [0.4, 1.0, 1.6],
            "config.task_range": [16, 24],
            "store.directory": store_dir,
            "store.backend": "columnar",
        },
    )
    handle = Campaign(spec).run()
    print(f"campaign: {spec.grid().total_units} units -> "
          f"{spec.store.resolved_backend!r} store in {handle.elapsed:.1f}s")
    return spec


def query_without_loading(store_dir: str, spec) -> None:
    # open_store sniffs the backend from the directory contents —
    # resume, reports and this script all go through the same door.
    with open_store(store_dir) as store:
        print(f"reopened as {type(store).__name__}, {len(store)} units")

        # Streaming query: predicate pushed down to the chunk index,
        # projection decodes only the requested columns.
        slow = [
            row
            for row in store.iter_rows(
                where={"algorithm": "caft", "granularity": 1.6},
                columns=["rep", "norm_latency"],
            )
        ]
        worst = max(r["norm_latency"] for r in slow)
        print(f"caft @ g=1.6: {len(slow)} reps, worst norm latency "
              f"{worst:.3f}")

        # The report layer runs off the store through a streaming view;
        # aggregates are bit-identical to the in-memory campaign path.
        view = StoreCampaignView(store, spec.config)
        print()
        print(campaign_comparison_table(view, baseline="caft"))


class _SweepUnit:
    """Minimal work-unit surface for direct ``store.append`` calls."""

    scenario = {"config": "sweep", "network": "oneport",
                "topology": "clique", "policy": "append"}

    def __init__(self, granularity: float, rep: int) -> None:
        self.granularity = granularity
        self.rep = rep

    @property
    def unit_id(self) -> str:
        s = self.scenario
        return unit_id_for(s["config"], s["network"], s["topology"],
                           s["policy"], self.granularity, self.rep)


def bulk_sweep(directory: Path) -> None:
    """Fill a columnar store directly and query it at scale."""
    n_units = max(10, int(os.environ.get("REPRO_EXAMPLE_ROWS", "20000")) // 2)
    gs = [round(0.2 * i, 1) for i in range(1, 11)]

    t0 = time.perf_counter()
    with ColumnarStore(directory, chunk_rows=4096) as store:
        for i in range(n_units):
            g, rep = gs[i % 10], i // 10
            base = 1.0 + g * 0.1 + (rep % 89) * 0.01
            store.append(
                _SweepUnit(g, rep),
                RepResult(
                    granularity=g,
                    rep=rep,
                    faultfree_norm={"caft": base, "ftbar": base * 1.1},
                    metrics={
                        "caft": {"norm_latency": base},
                        "ftbar": {"norm_latency": base + 0.4},
                    },
                ),
            )
    write_s = time.perf_counter() - t0
    chunks = sorted(directory.glob("chunk-*.npz"))
    print(f"\nbulk sweep: {n_units * 2} rows written in {write_s:.1f}s, "
          f"{len(chunks)} sealed chunks")

    t0 = time.perf_counter()
    with open_store(directory) as store:
        n = len(store)
        open_s = time.perf_counter() - t0
        # One granularity out of ten: nine tenths of the chunks are
        # skipped by their min/max footer entries before being read.
        t0 = time.perf_counter()
        hits = sum(
            1 for _ in store.iter_rows(
                where={"granularity": gs[3], "algorithm": "ftbar"},
                columns=["norm_latency"],
            )
        )
        query_s = time.perf_counter() - t0
    print(f"reopened {n} units in {open_s:.2f}s; pruned query matched "
          f"{hits} rows in {query_s:.2f}s")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = str(Path(tmp) / "store")
        spec = run_columnar_campaign(store_dir)
        query_without_loading(store_dir, spec)
        bulk_sweep(Path(tmp) / "sweep")


if __name__ == "__main__":
    main()
