"""A distributed, resumable campaign: TCP master + two local workers.

The campaign stack is three independent layers — a declarative
:class:`ScenarioGrid` (what to compute), an executor (where), and an
append-only :class:`RunStore` (results).  This script drives a small
figure-1 slice through the distributed path end to end:

1. expand the grid and run it on a ``SocketExecutor`` master that spawns
   two worker processes against an ephemeral localhost port (point real
   machines at the same master with
   ``repro-ftsched campaign worker HOST:PORT``);
2. persist every row into a store directory as it completes;
3. prove resumability by re-running from the store — zero units execute;
4. verify the rows are bit-identical to an inline serial run.

This drives the layers directly; the declarative front door over the
same stack is a :class:`~repro.experiments.CampaignSpec` with
``executor = {kind = "socket", ...}`` (see ``examples/campaign_spec.py``
and ``API.md``) — a spec file plus ``repro-ftsched campaign run`` gets
the identical distributed campaign without any of this wiring.

Run:  python examples/distributed_campaign.py
"""

import tempfile
from dataclasses import replace

from repro.experiments import (
    FIGURES,
    RunStore,
    ScenarioGrid,
    SocketExecutor,
    panel_c,
    run_grid,
)


def small_figure1_grid() -> ScenarioGrid:
    """Figure 1 shrunk to demo scale (full sweep -> 3 points, 2 graphs)."""
    config = replace(
        FIGURES[1].with_graphs(2),
        granularities=(0.4, 1.0, 1.6),
        task_range=(20, 30),
    )
    return ScenarioGrid.from_config(config)


def main() -> None:
    grid = small_figure1_grid()
    print(f"grid: {grid.total_units} work units "
          f"({len(grid.configs[0].granularities)} granularities x "
          f"{grid.configs[0].num_graphs} graphs)")

    with tempfile.TemporaryDirectory() as store_dir:
        master = SocketExecutor(spawn_workers=2, timeout=300.0)
        print("running on a TCP master with 2 spawned local workers ...")
        (result,) = run_grid(grid, store=store_dir, executor=master)
        print(f"master bound {master.address[0]}:{master.address[1]}; "
              f"store holds {len(RunStore(store_dir))} rows")
        print()
        print(panel_c(result))

        # Resume from the finished store: every unit is already recorded,
        # so this executes nothing — the same call picks up a *killed*
        # campaign exactly where it stopped.
        (resumed,) = run_grid(
            grid, store=store_dir, executor="serial", resume=True
        )
        print(f"resume from store: 0 units re-run, "
              f"rows identical: {resumed.rows() == result.rows()}")

    (serial,) = run_grid(grid, executor="serial")
    print(f"distributed rows == serial rows: "
          f"{serial.rows() == result.rows()}")


if __name__ == "__main__":
    main()
