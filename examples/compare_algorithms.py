"""One-screen decision aid: which scheduler for this application/cluster?

Characterizes the workload (structure + communication/computation ratio),
then runs every algorithm and prints the side-by-side comparison —
latency, guaranteed bound, replication traffic, and the *actual* measured
survival rate under sampled crashes.  The literal paper algorithm's
survival column is the reproduction's headline finding in miniature.

Run:  python examples/compare_algorithms.py
"""

from repro import ProblemInstance, range_exec_matrix, scale_to_granularity, tiled_cholesky, uniform_delay_platform
from repro.dag.features import (
    communication_to_computation_ratio,
    graph_features,
    ideal_speedup,
    parallelism_profile,
)
from repro.experiments.compare import compare_algorithms, comparison_table

PROCS = 8
EPSILON = 2


def main() -> None:
    wl = tiled_cholesky(6)
    platform = uniform_delay_platform(PROCS, rng=3)
    exec_cost = range_exec_matrix(wl.base_costs, PROCS, heterogeneity=0.75, rng=4)
    exec_cost = scale_to_granularity(wl.graph, platform, exec_cost, 0.8)
    instance = ProblemInstance(wl.graph, platform, exec_cost)

    features = graph_features(wl.graph)
    print(f"workload: {wl.name}")
    print(
        f"  {features.num_tasks} tasks, {features.num_edges} edges, "
        f"depth {features.depth}, width {features.width}, "
        f"avg parallelism {features.parallelism:.1f}"
    )
    print(f"  parallelism profile: {parallelism_profile(wl.graph)}")
    print(
        f"  CCR {communication_to_computation_ratio(instance):.2f}, "
        f"ideal speedup {ideal_speedup(instance):.1f} on {PROCS} processors"
    )

    print(f"\ncomparison (eps={EPSILON}, {EPSILON} sampled crashes x40):")
    rows = compare_algorithms(instance, EPSILON, crashes=EPSILON, samples=40, rng=0)
    print(comparison_table(rows))
    print(
        "\nNote the 'surv' column: the literal Algorithm 5.2 (caft-paper) "
        "claims eps-tolerance\nbut loses tasks under many crash patterns — "
        "see EXPERIMENTS.md, Finding 1."
    )


if __name__ == "__main__":
    main()
