"""Regenerate a paper figure from the library API (miniature scale).

The full campaigns live in ``benchmarks/bench_figure*.py`` and the CLI
(``repro-ftsched figure N``); this example shows the same machinery
driven programmatically: each figure ships as a campaign spec
(``repro/experiments/specs/figure<N>.json``), which is loaded, shrunk
with an override, and run through the :class:`Campaign` facade.  It
prints panel (c) — the average overhead comparison that carries the
paper's headline claim — and verifies the qualitative shape.

Run:  python examples/reproduce_figure.py [figure-number] [graphs-per-point]
"""

import sys

from repro.experiments import (
    Campaign,
    apply_overrides,
    check_shape,
    figure_spec,
    panel_c,
    write_csv,
)


def main() -> None:
    number = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    graphs = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    print(f"running figure {number} with {graphs} random graphs per point ...")
    spec = apply_overrides(figure_spec(number), {"graphs": graphs})
    result = Campaign(spec).run().result()

    print()
    print(panel_c(result))
    path = write_csv(result, f"results/figure{number}_example.csv")
    print(f"full series written to {path}")

    shape = check_shape(result)
    if shape.ok:
        print("qualitative shape of the paper's figure reproduced ✓")
    else:
        print(f"shape checks failed: {shape.failed()} (try more graphs per point)")


if __name__ == "__main__":
    main()
